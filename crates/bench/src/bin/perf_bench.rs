//! Machine-readable simulator-performance harness.
//!
//! Times the simulator itself (not the modeled hardware) over a fixed
//! trajectory of scenarios covering every execution path — closed-batch
//! trace pricing, the online serving engine, and the routed
//! multi-replica cluster — and emits one JSON document on stdout for CI
//! trend tracking:
//!
//! ```json
//! {"schema":"papi-perf-bench/1","scenarios":[
//!   {"scenario":"trace_llama65b_b64_s2","wall_ms":12.3,
//!    "tokens":9000,"tokens_per_sec":730000.0,"iterations":220,
//!    "cache_hit_rate":0.0}]}
//! ```
//!
//! `tokens_per_sec` is simulated output tokens per wall-clock second of
//! simulation — the harness's throughput figure of merit.
//! `cache_hit_rate`, `ttft_p99_ms`, `goodput_rps`,
//! `tier_fetch_time_s`, `replica_hours`, and `energy_per_good_token_j`
//! are deterministic simulation *outputs* (the prefix cache's token
//! hit rate, the episode's 99th-percentile simulated
//! time-to-first-token, the scenario's SLO goodput, the simulated
//! seconds spent re-materializing KV from capacity tiers, and the
//! elastic fleet's rented hours and energy per SLO-good token;
//! zero/null for scenarios where they don't apply), gated like
//! `tokens`/`iterations` — `ttft_p99_ms` and `tier_fetch_time_s`
//! within `bench_compare`'s latency tolerance, `goodput_rps` within
//! its goodput tolerance, and the two cost outputs within its cost
//! tolerance. Run with
//! `cargo run --release -p papi-bench --bin perf_bench`.

use papi_core::{
    AutoscalePolicySpec, AutoscaleSpec, ClusterEngine, ClusterSpec, DecodingSimulator, DesignKind,
    KvTierSpec, ServingEngine, SessionTuning, SharedTierSpec, SloSpec, StepMode, SystemConfig,
};
use papi_llm::ModelPreset;
use papi_workload::{
    ArrivalProcess, ConversationDataset, DatasetKind, PolicySpec, ReplicaRole, ServingWorkload,
    WorkloadSpec,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ScenarioResult {
    scenario: String,
    wall_ms: f64,
    tokens: u64,
    tokens_per_sec: f64,
    iterations: u64,
    cache_hit_rate: f64,
    ttft_p99_ms: f64,
    /// SLO goodput (requests meeting the scenario's SLO per simulated
    /// second) for scenarios that declare one; zero elsewhere. A
    /// deterministic simulation output, gated by `bench_compare`.
    goodput_rps: f64,
    /// Total simulated seconds spent re-materializing KV from a
    /// capacity tier — local DIMM fetches plus remote fabric fetches —
    /// for scenarios that exercise one (`null` elsewhere). A
    /// deterministic simulation output, gated by `bench_compare`
    /// against growth like `ttft_p99_ms`.
    tier_fetch_time_s: Option<f64>,
    /// Replica-hours the fleet provisioned, for elastic scenarios
    /// (`null` elsewhere). A deterministic simulation output, gated by
    /// `bench_compare` against growth through its cost tolerance — an
    /// autoscaler that quietly rents more capacity is a regression even
    /// when wall time and goodput look fine.
    replica_hours: Option<f64>,
    /// Fleet energy per SLO-good output token, J, for elastic scenarios
    /// (`null` elsewhere). Deterministic; gated against growth like
    /// `replica_hours`.
    energy_per_good_token_j: Option<f64>,
    /// Parallel-over-sequential wall-clock ratio, for scenarios that
    /// time both cluster step modes (`null` elsewhere).
    speedup_vs_sequential: Option<f64>,
}

#[derive(Debug, Serialize)]
struct PerfReport {
    schema: String,
    scenarios: Vec<ScenarioResult>,
}

/// What one scenario run produced: deterministic simulation outputs.
struct ScenarioOutputs {
    tokens: u64,
    iterations: u64,
    cache_hit_rate: f64,
    ttft_p99_ms: f64,
    goodput_rps: f64,
    tier_fetch_time_s: Option<f64>,
    replica_hours: Option<f64>,
    energy_per_good_token_j: Option<f64>,
}

impl ScenarioOutputs {
    fn plain(tokens: u64, iterations: u64) -> Self {
        Self {
            tokens,
            iterations,
            cache_hit_rate: 0.0,
            ttft_p99_ms: 0.0,
            goodput_rps: 0.0,
            tier_fetch_time_s: None,
            replica_hours: None,
            energy_per_good_token_j: None,
        }
    }
}

fn time_scenario(name: &str, run: impl Fn() -> ScenarioOutputs) -> ScenarioResult {
    // One warmup, then best-of-5 timed runs: the minimum is the least
    // noisy estimator of the code's cost, which keeps the CI
    // regression gate (`bench_compare`) off scheduler jitter.
    let mut outputs = run();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        outputs = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    ScenarioResult {
        scenario: name.to_owned(),
        wall_ms: best * 1e3,
        tokens: outputs.tokens,
        tokens_per_sec: outputs.tokens as f64 / best.max(1e-12),
        iterations: outputs.iterations,
        cache_hit_rate: outputs.cache_hit_rate,
        ttft_p99_ms: outputs.ttft_p99_ms,
        goodput_rps: outputs.goodput_rps,
        tier_fetch_time_s: outputs.tier_fetch_time_s,
        replica_hours: outputs.replica_hours,
        energy_per_good_token_j: outputs.energy_per_good_token_j,
        speedup_vs_sequential: None,
    }
}

fn main() {
    let model = ModelPreset::Llama65B;
    let mut scenarios = Vec::new();

    // Closed-batch trace pricing, low and high parallelism.
    for (batch, speculation) in [(4u64, 1u64), (64, 2)] {
        let name = format!("trace_llama65b_b{batch}_s{speculation}");
        scenarios.push(time_scenario(&name, || {
            let workload =
                WorkloadSpec::static_batching(DatasetKind::CreativeWriting, batch, speculation)
                    .with_seed(42);
            let report = DecodingSimulator::new(SystemConfig::papi(model.config())).run(&workload);
            ScenarioOutputs::plain(report.tokens, report.iterations)
        }));
    }

    // The §5.2.1 offline α calibration (runs the FC latency models).
    scenarios.push(time_scenario("alpha_calibration_llama65b", || {
        let calibration = SystemConfig::calibrate(&model.config());
        ScenarioOutputs::plain(calibration.alpha as u64, 1)
    }));

    // Online serving: moderate and saturating Poisson load.
    for rate in [2.0f64, 16.0] {
        let name = format!("serving_llama65b_poisson_r{rate:.0}");
        scenarios.push(time_scenario(&name, || {
            let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, rate, 96).with_seed(42);
            let report = ServingEngine::new(SystemConfig::build(DesignKind::Papi, model.config()))
                .with_max_batch(32)
                .run(&workload);
            ScenarioOutputs {
                tokens: report.tokens,
                iterations: report.iterations,
                cache_hit_rate: 0.0,
                ttft_p99_ms: report
                    .ttft_summary()
                    .expect("non-empty episode")
                    .p99
                    .as_millis(),
                goodput_rps: 0.0,
                tier_fetch_time_s: None,
                replica_hours: None,
                energy_per_good_token_j: None,
            }
        }));
    }

    // Paged KV with prefix sharing and chunked prefill over a
    // multi-turn conversation workload: exercises the block pool, the
    // prefix tree, and the chunk scheduler, and reports the cache hit
    // rate as a gated deterministic output.
    scenarios.push(time_scenario("prefix_caching_llama65b_chat", || {
        let workload = ServingWorkload::poisson(
            ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
            6.0,
            96,
        )
        .with_seed(42);
        let report = ServingEngine::new(SystemConfig::build(DesignKind::Papi, model.config()))
            .with_max_batch(32)
            .with_kv_block_size(16)
            .with_prefix_sharing(true)
            .with_prefill_chunk(512)
            .run(&workload);
        ScenarioOutputs {
            tokens: report.tokens,
            iterations: report.iterations,
            cache_hit_rate: report.kv.hit_rate(),
            ttft_p99_ms: report
                .ttft_summary()
                .expect("non-empty episode")
                .p99
                .as_millis(),
            goodput_rps: 0.0,
            tier_fetch_time_s: None,
            replica_hours: None,
            energy_per_good_token_j: None,
        }
    }));

    // Spill-to-host KV offload under long-context thrash: the capacity
    // tier keeps evicted conversation contexts and fetches them back at
    // DIMM pricing instead of re-prefilling. Exercises the tier's
    // spill/fetch path end to end and gates the two outputs the feature
    // exists for — SLO goodput and the fetch-priced p99 TTFT.
    scenarios.push(time_scenario("long_context_offload", || {
        let workload = ServingWorkload::poisson(
            ConversationDataset::multi_turn(DatasetKind::LongContext, 4096, 3),
            1.0,
            120,
        )
        .with_seed(23);
        let report = ServingEngine::new(SystemConfig::build(
            DesignKind::PimOnlyPapi,
            ModelPreset::Gpt3_175B.config(),
        ))
        .with_max_batch(16)
        .with_kv_block_size(16)
        .with_prefix_sharing(true)
        .with_kv_tier(KvTierSpec::new(60_000))
        .run(&workload);
        // The saturation-scale SLO that separates fetch from recompute
        // on this workload (see `tests/tiered_kv.rs`).
        let slo = SloSpec::interactive(600_000.0, 400.0);
        ScenarioOutputs {
            tokens: report.tokens,
            iterations: report.iterations,
            cache_hit_rate: report.kv.hit_rate(),
            ttft_p99_ms: report
                .ttft_summary()
                .expect("non-empty episode")
                .p99
                .as_millis(),
            goodput_rps: report.goodput(&slo),
            tier_fetch_time_s: Some(report.kv.tier_fetch_time_s),
            replica_hours: None,
            energy_per_good_token_j: None,
        }
    }));

    // Fleet-wide prefix sharing: a 2-replica fleet whose spilled
    // contexts are registered in one global directory, with
    // shared-tier-affinity routing relaxing stickiness whenever the
    // fabric can recover the prefix. Exercises the directory
    // publish/fetch path, the control-plane sync ticks, and the
    // remote-fetch pricing — and gates the fleet hit rate, the SLO
    // goodput, and the total tier fetch time (DIMM + fabric) the
    // feature trades against re-prefill.
    scenarios.push(time_scenario("fleet_prefix_sharing", || {
        let workload = ServingWorkload::poisson(
            ConversationDataset::multi_turn(DatasetKind::LongContext, 8192, 12),
            0.15,
            120,
        )
        .with_seed(23);
        let report = ClusterEngine::new(
            ClusterSpec::new(
                DesignKind::PimOnlyPapi,
                ModelPreset::Gpt3_175B.config(),
                1,
                2,
            )
            .with_routing(PolicySpec::shared_tier_affinity())
            .with_tuning(
                SessionTuning::default()
                    .with_max_batch(16)
                    .with_kv_block_size(16)
                    .with_prefix_sharing(true)
                    .with_kv_tier(KvTierSpec::new(60_000)),
            )
            .with_shared_tier(SharedTierSpec::new()),
        )
        .expect("valid fleet")
        .run(&workload);
        let slo = SloSpec::interactive(600_000.0, 400.0);
        ScenarioOutputs {
            tokens: report.tokens(),
            iterations: report.replicas.iter().map(|r| r.iterations).sum(),
            cache_hit_rate: report.cache_hit_rate(),
            ttft_p99_ms: report
                .ttft_summary()
                .expect("non-empty episode")
                .p99
                .as_millis(),
            goodput_rps: report.goodput(&slo),
            tier_fetch_time_s: Some(
                report
                    .replicas
                    .iter()
                    .map(|r| r.kv.tier_fetch_time_s + r.kv.remote_fetch_time_s)
                    .sum(),
            ),
            replica_hours: None,
            energy_per_good_token_j: None,
        }
    }));

    // Prefix-affinity routing across a 4-replica fleet with private
    // prefix caches: exercises the trait-based control plane (route
    // context construction, per-arrival policy dispatch, co-simulated
    // replica clocks) and gates the *fleet-wide* cache hit rate the
    // policy exists to recover.
    scenarios.push(time_scenario("prefix_affinity_routing", || {
        let workload = ServingWorkload::poisson(
            ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
            6.0,
            60,
        )
        .with_seed(42);
        let report = ClusterEngine::new(
            ClusterSpec::new(DesignKind::Papi, model.config(), 1, 4)
                .with_routing(PolicySpec::prefix_affinity())
                .with_tuning(
                    SessionTuning::default()
                        .with_max_batch(16)
                        .with_kv_block_size(16)
                        .with_prefix_sharing(true),
                ),
        )
        .expect("valid fleet")
        .run(&workload);
        ScenarioOutputs {
            tokens: report.tokens(),
            iterations: report.replicas.iter().map(|r| r.iterations).sum(),
            cache_hit_rate: report.cache_hit_rate(),
            ttft_p99_ms: report
                .ttft_summary()
                .expect("non-empty episode")
                .p99
                .as_millis(),
            goodput_rps: 0.0,
            tier_fetch_time_s: None,
            replica_hours: None,
            energy_per_good_token_j: None,
        }
    }));

    // Disaggregated prefill/decode serving on bursty long-context
    // load: exercises the role-aware event loop, prefill export, the
    // fabric-priced migration queue, and decode-side placement — and
    // gates the fleet's p99 TTFT (a deterministic simulated output)
    // through bench_compare's latency tolerance.
    scenarios.push(time_scenario("disaggregated_long_context", || {
        let workload = ServingWorkload::new(
            DatasetKind::LongContext,
            ArrivalProcess::Bursty {
                burst_size: 16,
                interval_sec: 10.0,
            },
            48,
        )
        .with_seed(42);
        let report = ClusterEngine::new(
            ClusterSpec::new(DesignKind::PimOnlyPapi, model.config(), 1, 4)
                .with_roles(vec![
                    ReplicaRole::Prefill,
                    ReplicaRole::Prefill,
                    ReplicaRole::Decode,
                    ReplicaRole::Decode,
                ])
                .with_prefill_design(DesignKind::A100AttAcc)
                .with_tuning(SessionTuning::default().with_max_batch(16)),
        )
        .expect("valid fleet")
        .run(&workload);
        ScenarioOutputs {
            tokens: report.tokens(),
            iterations: report.replicas.iter().map(|r| r.iterations).sum(),
            cache_hit_rate: 0.0,
            ttft_p99_ms: report
                .ttft_summary()
                .expect("non-empty episode")
                .p99
                .as_millis(),
            goodput_rps: 0.0,
            tier_fetch_time_s: None,
            replica_hours: None,
            energy_per_good_token_j: None,
        }
    }));

    // Elastic autoscaling over a compressed diurnal cycle: a
    // queue-depth policy resizes a 4-replica fleet through the full
    // lifecycle machinery (decide ticks, cold spin-up, draining,
    // ring-remapped prefix affinity). Times the elastic event loop and
    // gates the three numbers the subsystem exists for — SLO goodput,
    // the replica-hours rented, and the fleet's energy per SLO-good
    // token (both through `bench_compare`'s cost tolerance).
    scenarios.push(time_scenario("autoscale_diurnal", || {
        let workload = ServingWorkload::new(
            ConversationDataset::multi_turn(DatasetKind::GeneralQa, 256, 2),
            ArrivalProcess::Diurnal {
                base_rate_per_sec: 0.5,
                peak_rate_per_sec: 4.0,
                period_s: 120.0,
                noise: 0.1,
            },
            300,
        )
        .with_seed(29);
        let slo = SloSpec::interactive(2_000.0, 100.0);
        let report = ClusterEngine::new(
            ClusterSpec::new(DesignKind::PimOnlyPapi, model.config(), 1, 4)
                .with_routing(PolicySpec::prefix_affinity())
                .with_tuning(
                    SessionTuning::default()
                        .with_max_batch(8)
                        .with_kv_block_size(16)
                        .with_prefix_sharing(true),
                )
                .with_autoscale(
                    AutoscaleSpec::new(
                        AutoscalePolicySpec::QueueDepthTarget {
                            scale_up_depth: 0.3,
                            scale_down_depth: 0.02,
                        },
                        slo,
                    )
                    .with_min_replicas(1)
                    .with_initial_replicas(2)
                    .with_spin_up(6.0)
                    .with_decide_interval(2.5),
                ),
        )
        .expect("valid elastic fleet")
        .run(&workload);
        let cost = report.fleet_cost.as_ref().expect("elastic cost report");
        ScenarioOutputs {
            tokens: report.tokens(),
            iterations: report.replicas.iter().map(|r| r.iterations).sum(),
            cache_hit_rate: report.cache_hit_rate(),
            ttft_p99_ms: report
                .ttft_summary()
                .expect("non-empty episode")
                .p99
                .as_millis(),
            goodput_rps: report.goodput(&slo),
            tier_fetch_time_s: None,
            replica_hours: Some(cost.provisioned_hours),
            energy_per_good_token_j: Some(cost.energy_per_good_token_j),
        }
    }));

    // 64-replica fleet under bursty multi-turn chat with
    // prefix-affinity routing: the parallel-stepping showcase. Times
    // both step modes (best-of-3 each), asserts their reports are
    // bit-for-bit identical, and gates the parallel path's wall-clock
    // advantage through `speedup_vs_sequential`.
    scenarios.push({
        let workload = ServingWorkload::new(
            ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
            ArrivalProcess::Bursty {
                burst_size: 8,
                interval_sec: 1.0,
            },
            2048,
        )
        .with_seed(42);
        let spec = ClusterSpec::new(DesignKind::PimOnlyPapi, model.config(), 1, 64)
            .with_routing(PolicySpec::prefix_affinity())
            .with_tuning(
                SessionTuning::default()
                    .with_max_batch(8)
                    .with_kv_block_size(16)
                    .with_prefix_sharing(true),
            );
        let run_mode = |mode: StepMode| {
            let engine =
                ClusterEngine::new(spec.clone().with_step_mode(mode)).expect("valid fleet");
            let start = Instant::now();
            let report = engine.run(&workload);
            (start.elapsed().as_secs_f64(), report)
        };
        // Warm both paths, then interleave timed runs so machine-load
        // drift hits both modes equally.
        let (_, seq_report) = run_mode(StepMode::Sequential);
        let (_, par_report) = run_mode(StepMode::Parallel);
        assert_eq!(
            serde_json::to_string(&seq_report).expect("report serializes"),
            serde_json::to_string(&par_report).expect("report serializes"),
            "parallel fleet stepping diverged from the sequential reference"
        );
        let (mut seq_best, mut par_best) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            seq_best = seq_best.min(run_mode(StepMode::Sequential).0);
            par_best = par_best.min(run_mode(StepMode::Parallel).0);
        }
        ScenarioResult {
            scenario: "cluster_fleet_64".to_owned(),
            wall_ms: par_best * 1e3,
            tokens: par_report.tokens(),
            tokens_per_sec: par_report.tokens() as f64 / par_best.max(1e-12),
            iterations: par_report.replicas.iter().map(|r| r.iterations).sum(),
            cache_hit_rate: par_report.cache_hit_rate(),
            ttft_p99_ms: par_report
                .ttft_summary()
                .expect("non-empty episode")
                .p99
                .as_millis(),
            goodput_rps: 0.0,
            tier_fetch_time_s: None,
            replica_hours: None,
            energy_per_good_token_j: None,
            speedup_vs_sequential: Some(seq_best / par_best),
        }
    });

    let report = PerfReport {
        schema: "papi-perf-bench/1".to_owned(),
        scenarios,
    };
    println!(
        "{}",
        serde_json::to_string(&report).expect("perf report serializes")
    );
}
