//! Ablation: fixed versus batch-co-optimized speculation length
//! (§3.2's runtime-TLP scenario). The adaptive controller keeps
//! `RLP × TLP` near a target as the batch drains, which (a) finishes the
//! tail in far fewer iterations and (b) keeps the FC kernel's placement
//! stable — the PAPI scheduler simply tracks the TLP register (§5.2.2).

use papi_bench::{f2, print_table};
use papi_core::{DecodingSimulator, DesignKind, SystemConfig};
use papi_llm::ModelPreset;
use papi_workload::{DatasetKind, WorkloadSpec};

fn main() {
    let model = ModelPreset::Llama65B.config();
    let fixed = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 32, 2).with_seed(42);
    let adaptive = fixed.clone().with_adaptive_tlp(64, 8);

    println!("== dynamic-TLP ablation — LLaMA-65B, batch 32 ==\n");
    let mut rows = Vec::new();
    for (label, workload) in [
        ("fixed TLP=2", &fixed),
        ("adaptive (target 64, max 8)", &adaptive),
    ] {
        let trace = workload.trace();
        for kind in [DesignKind::A100AttAcc, DesignKind::Papi] {
            let report =
                DecodingSimulator::new(SystemConfig::build(kind, model.clone())).run_trace(&trace);
            rows.push(vec![
                label.to_owned(),
                report.design.clone(),
                trace.len().to_string(),
                f2(report.total_latency().as_secs()),
                f2(report.tokens_per_second()),
                report.scheduler.switches.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "TLP policy",
            "design",
            "iterations",
            "latency (s)",
            "tokens/s",
            "reschedules",
        ],
        &rows,
    );
    println!("\nAdaptive TLP shortens the decayed tail (fewer iterations) and keeps");
    println!("tokens-in-flight near the target, so PAPI leaves FC on the PU —");
    println!("dynamic parallelism handled by tracking the TLP register, as §5.2.2 describes.");
}
