//! Machine-readable cluster sweep: the TP/DP trade across offered load.
//!
//! Sweeps fleet shapes (tensor-parallel width × data-parallel replicas)
//! over rising Poisson load and emits one JSON document on stdout:
//!
//! ```json
//! {"schema":"papi-cluster-sweep/1","rows":[
//!   {"shape":"4x TP1","tp_degree":1,"dp_replicas":4,"rate_per_sec":16.0,
//!    "goodput_rps":13.9,"tpot_p50_ms":4.0,...}]}
//! ```
//!
//! Run with `cargo run --release -p papi-bench --bin cluster_sweep`.

use papi_core::experiments::{ClusterSweep, ClusterSweepRow};
use papi_core::{DesignKind, SessionTuning, SloSpec};
use papi_llm::ModelPreset;
use papi_workload::{DatasetKind, PolicySpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SweepReport {
    schema: String,
    model: String,
    design: String,
    rows: Vec<ClusterSweepRow>,
}

fn main() {
    let rows = ClusterSweep {
        model: ModelPreset::Llama65B,
        design: DesignKind::PimOnlyPapi,
        dataset: DatasetKind::GeneralQa,
        rates: vec![0.5, 4.0, 16.0, 48.0],
        num_requests: 96,
        shapes: vec![(4, 1), (2, 2), (1, 4)],
        routing: PolicySpec::JoinShortestQueue,
        tuning: SessionTuning::default().with_max_batch(32),
        slo: SloSpec::interactive(2_000.0, 60.0),
        seed: 42,
    }
    .run();
    let report = SweepReport {
        schema: "papi-cluster-sweep/1".to_owned(),
        model: ModelPreset::Llama65B.config().name,
        design: DesignKind::PimOnlyPapi.label().to_owned(),
        rows,
    };
    println!(
        "{}",
        serde_json::to_string(&report).expect("sweep report serializes")
    );
}
