//! Fig. 12: execution-time breakdown per token in the decoding phase —
//! AttAcc-only vs PIM-only PAPI, LLaMA-65B, batch 4, speculation 4.

use papi_bench::{f3, print_table};
use papi_core::experiments::fig12_breakdown;

fn main() {
    let rows = fig12_breakdown(42);
    println!("== Fig. 12 — per-token execution time (ms), LLaMA-65B b4 s4 ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.design.clone(),
                f3(r.attention_ms),
                f3(r.fc_ms),
                f3(r.communication_ms),
                f3(r.other_ms),
                f3(r.total_ms()),
            ]
        })
        .collect();
    print_table(
        &[
            "design",
            "attention",
            "FC",
            "communication",
            "other",
            "total",
        ],
        &table,
    );
    let fc_ratio = rows[0].fc_ms / rows[1].fc_ms;
    let attn_ratio = rows[1].attention_ms / rows[0].attention_ms;
    let comm_share = rows[1].communication_ms / rows[1].total_ms();
    println!("\nFC speedup (PIM-only PAPI vs AttAcc-only): {fc_ratio:.2}× (paper: 2.9×)");
    println!("Attention slowdown on 1P2B Attn-PIM: {attn_ratio:.2}× (paper: 1.7×)");
    println!(
        "Communication share of PIM-only PAPI: {:.1}% (paper: 28.2%)",
        comm_share * 100.0
    );
}
