//! `papi-bench` — the figure-regeneration harness.
//!
//! Each `fig*` binary in `src/bin/` regenerates one figure of the paper
//! (run e.g. `cargo run -p papi-bench --bin fig08_end_to_end --release`);
//! the Criterion benches in `benches/` measure the simulator itself.
//! This library holds the shared table-formatting and sweep plumbing.

#![warn(missing_docs)]

use papi_core::experiments::EndToEndRow;
use papi_types::geometric_mean;
use std::collections::BTreeMap;

/// Prints a Markdown-style table.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let body: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", body.join(" | "));
    };
    fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        fmt_row(row);
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Per-design geometric-mean speedup and energy efficiency over a set of
/// end-to-end rows (how the paper reports its headline numbers).
pub fn summarize_by_design(rows: &[EndToEndRow]) -> Vec<(String, f64, f64)> {
    let mut by_design: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for row in rows {
        let entry = by_design.entry(row.design.clone()).or_default();
        entry.0.push(row.speedup);
        entry.1.push(row.energy_efficiency);
    }
    by_design
        .into_iter()
        .map(|(design, (speedups, effs))| {
            (
                design,
                geometric_mean(&speedups).unwrap_or(0.0),
                geometric_mean(&effs).unwrap_or(0.0),
            )
        })
        .collect()
}

/// Prints the per-design summary block used by the fig8/fig9 binaries.
pub fn print_design_summary(title: &str, rows: &[EndToEndRow]) {
    println!("\n== {title}: geometric-mean over all configurations ==");
    let summary = summarize_by_design(rows);
    let table: Vec<Vec<String>> = summary
        .iter()
        .map(|(design, speedup, eff)| vec![design.clone(), f2(*speedup), f2(*eff)])
        .collect();
    print_table(&["design", "speedup (×)", "energy eff. (×)"], &table);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(design: &str, speedup: f64, eff: f64) -> EndToEndRow {
        EndToEndRow {
            model: "m".into(),
            dataset: "d".into(),
            speculation: 1,
            batch: 4,
            design: design.into(),
            speedup,
            energy_efficiency: eff,
            latency_s: 1.0,
            energy_j: 1.0,
        }
    }

    #[test]
    fn summary_geomeans_per_design() {
        let rows = vec![
            row("PAPI", 2.0, 4.0),
            row("PAPI", 8.0, 1.0),
            row("base", 1.0, 1.0),
        ];
        let summary = summarize_by_design(&rows);
        let papi = summary.iter().find(|(d, ..)| d == "PAPI").unwrap();
        assert!((papi.1 - 4.0).abs() < 1e-12);
        assert!((papi.2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
