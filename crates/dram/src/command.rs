//! DRAM commands and memory-controller requests.

use serde::{Deserialize, Serialize};

/// A DRAM command as issued on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramCommand {
    /// Open (activate) a row in a bank.
    Activate {
        /// Row to open.
        row: u64,
    },
    /// Close the open row of a bank.
    Precharge,
    /// Read one column burst from the open row.
    Read {
        /// Column (in column-access units).
        column: u64,
    },
    /// Write one column burst into the open row.
    Write {
        /// Column (in column-access units).
        column: u64,
    },
    /// All-bank refresh.
    Refresh,
}

impl DramCommand {
    /// Short mnemonic, matching Ramulator-style trace output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DramCommand::Activate { .. } => "ACT",
            DramCommand::Precharge => "PRE",
            DramCommand::Read { .. } => "RD",
            DramCommand::Write { .. } => "WR",
            DramCommand::Refresh => "REF",
        }
    }
}

impl core::fmt::Display for DramCommand {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DramCommand::Activate { row } => write!(f, "ACT(row={row})"),
            DramCommand::Read { column } => write!(f, "RD(col={column})"),
            DramCommand::Write { column } => write!(f, "WR(col={column})"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// Whether a memory request reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Read one column burst.
    Read,
    /// Write one column burst.
    Write,
}

/// One column-granularity request for a [`Controller`](crate::Controller).
///
/// Requests address a bank directly by flat index: the controller models a
/// set of banks behind one command sequencer (a pseudo-channel, or a whole
/// PIM die in per-bank mode), and the address-mapping step has already
/// happened in [`Topology::decode`](crate::Topology::decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRequest {
    /// Flat bank index within the controller's bank set.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Column within the row (column-access units).
    pub column: u64,
    /// Read or write.
    pub kind: RequestKind,
}

impl MemRequest {
    /// Convenience constructor for a read request.
    pub fn read(bank: usize, row: u64, column: u64) -> Self {
        Self {
            bank,
            row,
            column,
            kind: RequestKind::Read,
        }
    }

    /// Convenience constructor for a write request.
    pub fn write(bank: usize, row: u64, column: u64) -> Self {
        Self {
            bank,
            row,
            column,
            kind: RequestKind::Write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics() {
        assert_eq!(DramCommand::Activate { row: 3 }.mnemonic(), "ACT");
        assert_eq!(DramCommand::Precharge.mnemonic(), "PRE");
        assert_eq!(DramCommand::Read { column: 0 }.mnemonic(), "RD");
        assert_eq!(DramCommand::Write { column: 0 }.mnemonic(), "WR");
        assert_eq!(DramCommand::Refresh.mnemonic(), "REF");
    }

    #[test]
    fn display_includes_operands() {
        assert_eq!(DramCommand::Activate { row: 7 }.to_string(), "ACT(row=7)");
        assert_eq!(DramCommand::Read { column: 5 }.to_string(), "RD(col=5)");
        assert_eq!(DramCommand::Refresh.to_string(), "REF");
    }

    #[test]
    fn request_constructors() {
        let r = MemRequest::read(3, 10, 2);
        assert_eq!(r.kind, RequestKind::Read);
        assert_eq!(r.bank, 3);
        let w = MemRequest::write(0, 0, 0);
        assert_eq!(w.kind, RequestKind::Write);
    }
}
