//! DRAM energy accounting.
//!
//! The parameters are calibrated so that the *system-level* behaviours the
//! PAPI paper reports emerge from the model:
//!
//! - streaming weights with no data reuse makes DRAM access ≈ 96.7 % of
//!   PIM execution energy (Fig. 7(a)), falling to ≈ 33 % at a data-reuse
//!   level of 64 (Fig. 7(b)) — the transfer/compute side of that split
//!   lives in `papi-pim`;
//! - a 1P1B die streaming with no reuse lands slightly above the 116 W
//!   HBM3 power budget, while 4P1B with reuse ≥ 4 fits inside it
//!   (Fig. 7(c)).

use crate::timing::Cycle;
use papi_types::{Energy, Power, Time};
use serde::{Deserialize, Serialize};

/// Per-command and background energy parameters for one HBM stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one ACT/PRE pair (whole-row activation), in picojoules.
    pub activate_pj: f64,
    /// Array + periphery energy per byte of column access (read), in pJ.
    pub read_pj_per_byte: f64,
    /// Array + periphery energy per byte of column access (write), in pJ.
    pub write_pj_per_byte: f64,
    /// Additional I/O energy per byte driven off-die (TSV + PHY), in pJ.
    /// Near-bank PIM consumption does not pay this.
    pub io_pj_per_byte: f64,
    /// Energy of refreshing one bank once, in picojoules.
    pub refresh_pj_per_bank: f64,
    /// Background (standby) power of the whole stack.
    pub background: Power,
}

impl EnergyParams {
    /// HBM3 preset calibrated to the PAPI paper (see module docs).
    pub fn hbm3() -> Self {
        Self {
            activate_pj: 1200.0,
            read_pj_per_byte: 61.56, // ≈7.7 pJ/bit; +row activation ≈ 7.77 pJ/bit
            write_pj_per_byte: 65.0,
            io_pj_per_byte: 24.0, // ≈3 pJ/bit off-die
            refresh_pj_per_bank: 2000.0,
            background: Power::from_watts(4.0),
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::hbm3()
    }
}

/// Raw event counters accumulated by a [`Controller`](crate::Controller).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyCounter {
    /// Row activations (ACT/PRE pairs).
    pub activations: u64,
    /// Bytes read by column accesses.
    pub read_bytes: u64,
    /// Bytes written by column accesses.
    pub write_bytes: u64,
    /// Bytes that additionally crossed the off-die interface.
    pub io_bytes: u64,
    /// Per-bank refresh operations.
    pub bank_refreshes: u64,
}

impl EnergyCounter {
    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &EnergyCounter) {
        self.activations += other.activations;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.io_bytes += other.io_bytes;
        self.bank_refreshes += other.bank_refreshes;
    }

    /// Converts raw counters into an energy breakdown for a run that
    /// lasted `elapsed` wall-clock time.
    pub fn breakdown(&self, params: &EnergyParams, elapsed: Time) -> DramEnergyBreakdown {
        DramEnergyBreakdown {
            activation: Energy::from_picojoules(self.activations as f64 * params.activate_pj),
            column: Energy::from_picojoules(
                self.read_bytes as f64 * params.read_pj_per_byte
                    + self.write_bytes as f64 * params.write_pj_per_byte,
            ),
            io: Energy::from_picojoules(self.io_bytes as f64 * params.io_pj_per_byte),
            refresh: Energy::from_picojoules(
                self.bank_refreshes as f64 * params.refresh_pj_per_bank,
            ),
            background: params.background * elapsed,
        }
    }
}

/// Energy consumed by a DRAM device over a simulated interval, split by
/// source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramEnergyBreakdown {
    /// Row activate/precharge energy.
    pub activation: Energy,
    /// Column (array + periphery) access energy.
    pub column: Energy,
    /// Off-die I/O energy (zero for near-bank PIM consumption).
    pub io: Energy,
    /// Refresh energy.
    pub refresh: Energy,
    /// Standby/background energy.
    pub background: Energy,
}

impl DramEnergyBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> Energy {
        self.activation + self.column + self.io + self.refresh + self.background
    }

    /// The "DRAM access" bucket of the paper's Fig. 7: activation +
    /// column energy (what it costs to get weight bits out of the arrays).
    pub fn dram_access(&self) -> Energy {
        self.activation + self.column
    }

    /// Average power over a run of length `elapsed`.
    pub fn average_power(&self, elapsed: Time) -> Power {
        self.total() / elapsed
    }
}

/// Helper converting a cycle count at a given clock period to time.
/// Re-exported here because energy reporting is where it is most used.
pub fn cycles_at(t_ck: Time, cycles: Cycle) -> Time {
    t_ck * cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_access_energy_is_about_7_77_pj_per_bit() {
        // One 2 KiB row fully streamed: 1 activation + 2048 B of reads.
        let p = EnergyParams::hbm3();
        let c = EnergyCounter {
            activations: 1,
            read_bytes: 2048,
            ..Default::default()
        };
        let b = c.breakdown(&p, Time::from_nanos(1.0));
        let per_bit = b.dram_access().as_picojoules() / (2048.0 * 8.0);
        assert!(
            (per_bit - 7.77).abs() < 0.05,
            "got {per_bit} pJ/bit, want ~7.77"
        );
    }

    #[test]
    fn io_energy_only_counts_io_bytes() {
        let p = EnergyParams::hbm3();
        let c = EnergyCounter {
            read_bytes: 1000,
            io_bytes: 0,
            ..Default::default()
        };
        assert_eq!(c.breakdown(&p, Time::ZERO).io, Energy::ZERO);
        let c2 = EnergyCounter {
            read_bytes: 1000,
            io_bytes: 1000,
            ..Default::default()
        };
        let b = c2.breakdown(&p, Time::ZERO);
        assert!((b.io.as_picojoules() - 24_000.0).abs() < 1e-6);
    }

    #[test]
    fn background_scales_with_time() {
        let p = EnergyParams::hbm3();
        let c = EnergyCounter::default();
        let b1 = c.breakdown(&p, Time::from_millis(1.0));
        let b2 = c.breakdown(&p, Time::from_millis(2.0));
        assert!((b2.background.value() - 2.0 * b1.background.value()).abs() < 1e-15);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = EnergyCounter {
            activations: 1,
            read_bytes: 10,
            write_bytes: 5,
            io_bytes: 2,
            bank_refreshes: 3,
        };
        a.merge(&a.clone());
        assert_eq!(a.activations, 2);
        assert_eq!(a.read_bytes, 20);
        assert_eq!(a.write_bytes, 10);
        assert_eq!(a.io_bytes, 4);
        assert_eq!(a.bank_refreshes, 6);
    }

    #[test]
    fn average_power_is_total_over_time() {
        let p = EnergyParams::hbm3();
        let c = EnergyCounter {
            activations: 1000,
            read_bytes: 1 << 20,
            ..Default::default()
        };
        let t = Time::from_micros(10.0);
        let b = c.breakdown(&p, t);
        let pw = b.average_power(t);
        assert!((pw.value() - b.total().value() / t.value()).abs() < 1e-9);
    }
}
