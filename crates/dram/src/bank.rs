//! Per-bank DRAM state machine.
//!
//! Each [`Bank`] tracks its open row and the earliest cycle at which each
//! command class may legally issue, updating those horizons as commands
//! are accepted. The controller consults [`Bank::earliest`] to schedule
//! and calls [`Bank::issue`]; issuing a command that violates a timing
//! constraint or the state machine is an error, never silently accepted —
//! this is the invariant the property tests hammer on.

use crate::command::DramCommand;
use crate::timing::{Cycle, TimingParams};
use serde::{Deserialize, Serialize};

/// Whether a bank has a row open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// No row open; the bank may accept ACT or REF.
    Idle,
    /// A row is open; the bank may accept RD/WR to it or PRE.
    Active {
        /// The open row.
        row: u64,
    },
}

/// Error returned when a command cannot legally issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankError {
    command: &'static str,
    reason: String,
}

impl core::fmt::Display for BankError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cannot issue {}: {}", self.command, self.reason)
    }
}

impl std::error::Error for BankError {}

/// Counters kept by each bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// RD commands issued.
    pub reads: u64,
    /// WR commands issued.
    pub writes: u64,
    /// Refresh operations applied.
    pub refreshes: u64,
}

/// A single DRAM bank.
///
/// # Example
///
/// ```
/// use papi_dram::{Bank, BankState, DramCommand, TimingParams};
///
/// let t = TimingParams::hbm3();
/// let mut bank = Bank::new();
/// bank.issue(DramCommand::Activate { row: 42 }, 0, &t).unwrap();
/// assert_eq!(bank.state(), BankState::Active { row: 42 });
/// // Reading before tRCD has elapsed is rejected:
/// assert!(bank.issue(DramCommand::Read { column: 0 }, 1, &t).is_err());
/// assert!(bank
///     .issue(DramCommand::Read { column: 0 }, t.t_rcd, &t)
///     .is_ok());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    earliest_activate: Cycle,
    earliest_precharge: Cycle,
    earliest_read: Cycle,
    earliest_write: Cycle,
    stats: BankStats,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A fresh, idle bank with no pending constraints.
    pub fn new() -> Self {
        Self {
            state: BankState::Idle,
            earliest_activate: 0,
            earliest_precharge: 0,
            earliest_read: 0,
            earliest_write: 0,
            stats: BankStats::default(),
        }
    }

    /// Current open/closed state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Idle => None,
        }
    }

    /// Per-bank command counters.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Earliest cycle at which `command` could issue given the timing
    /// horizons alone (the state machine must *also* permit it; see
    /// [`Bank::can_issue`]).
    pub fn earliest(&self, command: &DramCommand) -> Cycle {
        match command {
            DramCommand::Activate { .. } | DramCommand::Refresh => self.earliest_activate,
            DramCommand::Precharge => self.earliest_precharge,
            DramCommand::Read { .. } => self.earliest_read,
            DramCommand::Write { .. } => self.earliest_write,
        }
    }

    /// Whether `command` may issue at cycle `now`.
    pub fn can_issue(&self, command: &DramCommand, now: Cycle) -> bool {
        if now < self.earliest(command) {
            return false;
        }
        matches!(
            (command, self.state),
            (DramCommand::Activate { .. }, BankState::Idle)
                | (DramCommand::Refresh, BankState::Idle)
                | (DramCommand::Precharge, BankState::Active { .. })
                | (DramCommand::Read { .. }, BankState::Active { .. })
                | (DramCommand::Write { .. }, BankState::Active { .. })
        )
    }

    /// Issues `command` at cycle `now`, updating the state machine and
    /// timing horizons.
    ///
    /// Returns the cycle at which the command's effect completes (data
    /// beat for RD/WR, bank-ready for ACT/PRE/REF).
    ///
    /// # Errors
    ///
    /// Returns [`BankError`] if the command violates the state machine
    /// (e.g. RD on an idle bank) or a timing constraint (`now` earlier
    /// than the command's horizon).
    pub fn issue(
        &mut self,
        command: DramCommand,
        now: Cycle,
        timing: &TimingParams,
    ) -> Result<Cycle, BankError> {
        let earliest = self.earliest(&command);
        if now < earliest {
            return Err(BankError {
                command: command.mnemonic(),
                reason: format!("cycle {now} violates timing (earliest {earliest})"),
            });
        }
        match (command, self.state) {
            (DramCommand::Activate { row }, BankState::Idle) => {
                self.state = BankState::Active { row };
                self.earliest_read = self.earliest_read.max(now + timing.t_rcd);
                self.earliest_write = self.earliest_write.max(now + timing.t_rcd);
                self.earliest_precharge = self.earliest_precharge.max(now + timing.t_ras);
                self.earliest_activate = self.earliest_activate.max(now + timing.t_rc);
                self.stats.activates += 1;
                Ok(now + timing.t_rcd)
            }
            (DramCommand::Precharge, BankState::Active { .. }) => {
                self.state = BankState::Idle;
                self.earliest_activate = self.earliest_activate.max(now + timing.t_rp);
                self.stats.precharges += 1;
                Ok(now + timing.t_rp)
            }
            (DramCommand::Read { .. }, BankState::Active { .. }) => {
                self.earliest_read = now + timing.t_ccd;
                self.earliest_write = self.earliest_write.max(now + timing.t_ccd);
                self.earliest_precharge = self.earliest_precharge.max(now + timing.t_rtp);
                self.stats.reads += 1;
                Ok(now + timing.t_cl + timing.t_bus)
            }
            (DramCommand::Write { .. }, BankState::Active { .. }) => {
                self.earliest_write = now + timing.t_ccd;
                self.earliest_read = self.earliest_read.max(now + timing.t_ccd);
                self.earliest_precharge = self
                    .earliest_precharge
                    .max(now + timing.t_cl + timing.t_bus + timing.t_wr);
                self.stats.writes += 1;
                Ok(now + timing.t_cl + timing.t_bus)
            }
            (DramCommand::Refresh, BankState::Idle) => {
                self.earliest_activate = self.earliest_activate.max(now + timing.t_rfc);
                self.stats.refreshes += 1;
                Ok(now + timing.t_rfc)
            }
            (cmd, state) => Err(BankError {
                command: cmd.mnemonic(),
                reason: format!("illegal in state {state:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t() -> TimingParams {
        TimingParams::hbm3()
    }

    #[test]
    fn activate_then_read_respects_trcd() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(DramCommand::Activate { row: 1 }, 0, &timing)
            .unwrap();
        assert!(!bank.can_issue(&DramCommand::Read { column: 0 }, timing.t_rcd - 1));
        assert!(bank.can_issue(&DramCommand::Read { column: 0 }, timing.t_rcd));
    }

    #[test]
    fn precharge_respects_tras() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(DramCommand::Activate { row: 1 }, 0, &timing)
            .unwrap();
        assert!(bank
            .issue(DramCommand::Precharge, timing.t_ras - 1, &timing)
            .is_err());
        assert!(bank
            .issue(DramCommand::Precharge, timing.t_ras, &timing)
            .is_ok());
        assert_eq!(bank.state(), BankState::Idle);
    }

    #[test]
    fn back_to_back_reads_respect_tccd() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(DramCommand::Activate { row: 1 }, 0, &timing)
            .unwrap();
        let first = timing.t_rcd;
        bank.issue(DramCommand::Read { column: 0 }, first, &timing)
            .unwrap();
        assert!(bank
            .issue(DramCommand::Read { column: 1 }, first + 1, &timing)
            .is_err());
        assert!(bank
            .issue(
                DramCommand::Read { column: 1 },
                first + timing.t_ccd,
                &timing
            )
            .is_ok());
    }

    #[test]
    fn act_to_act_respects_trc() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(DramCommand::Activate { row: 1 }, 0, &timing)
            .unwrap();
        bank.issue(DramCommand::Precharge, timing.t_ras, &timing)
            .unwrap();
        // tRP elapsed but tRC not yet: tRC = tRAS + tRP, so exactly equal here;
        // use a second cycle to check the max() path.
        assert!(bank
            .issue(DramCommand::Activate { row: 2 }, timing.t_rc - 1, &timing)
            .is_err());
        bank.issue(DramCommand::Activate { row: 2 }, timing.t_rc, &timing)
            .unwrap();
        assert_eq!(bank.open_row(), Some(2));
    }

    #[test]
    fn read_on_idle_bank_is_illegal() {
        let timing = t();
        let mut bank = Bank::new();
        let err = bank
            .issue(DramCommand::Read { column: 0 }, 100, &timing)
            .unwrap_err();
        assert!(err.to_string().contains("RD"));
    }

    #[test]
    fn refresh_requires_idle_and_blocks_activate() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(DramCommand::Activate { row: 1 }, 0, &timing)
            .unwrap();
        assert!(bank
            .issue(DramCommand::Refresh, timing.t_ras, &timing)
            .is_err());
        bank.issue(DramCommand::Precharge, timing.t_ras, &timing)
            .unwrap();
        let start = timing.t_rc;
        bank.issue(DramCommand::Refresh, start, &timing).unwrap();
        assert!(!bank.can_issue(&DramCommand::Activate { row: 0 }, start + timing.t_rfc - 1));
        assert!(bank.can_issue(&DramCommand::Activate { row: 0 }, start + timing.t_rfc));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(DramCommand::Activate { row: 1 }, 0, &timing)
            .unwrap();
        let wr_at = timing.t_rcd;
        bank.issue(DramCommand::Write { column: 0 }, wr_at, &timing)
            .unwrap();
        let pre_earliest = wr_at + timing.t_cl + timing.t_bus + timing.t_wr;
        assert!(!bank.can_issue(&DramCommand::Precharge, pre_earliest - 1));
        assert!(bank.can_issue(&DramCommand::Precharge, pre_earliest));
    }

    #[test]
    fn stats_count_commands() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(DramCommand::Activate { row: 1 }, 0, &timing)
            .unwrap();
        bank.issue(DramCommand::Read { column: 0 }, timing.t_rcd, &timing)
            .unwrap();
        bank.issue(
            DramCommand::Read { column: 1 },
            timing.t_rcd + timing.t_ccd,
            &timing,
        )
        .unwrap();
        bank.issue(DramCommand::Precharge, timing.t_ras + timing.t_rtp, &timing)
            .unwrap();
        let s = bank.stats();
        assert_eq!(s.activates, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.precharges, 1);
    }

    // Generates a random command sequence and verifies the bank never
    // accepts a command its own `can_issue` rejects, and vice versa —
    // i.e. the two entry points agree, and accepted commands always move
    // time horizons forward.
    proptest! {
        #[test]
        fn issue_and_can_issue_agree(ops in proptest::collection::vec(0u8..5, 1..64)) {
            let timing = t();
            let mut bank = Bank::new();
            let mut now: Cycle = 0;
            for op in ops {
                let cmd = match op {
                    0 => DramCommand::Activate { row: 7 },
                    1 => DramCommand::Precharge,
                    2 => DramCommand::Read { column: 3 },
                    3 => DramCommand::Write { column: 4 },
                    _ => DramCommand::Refresh,
                };
                let allowed = bank.can_issue(&cmd, now);
                let result = bank.issue(cmd, now, &timing);
                prop_assert_eq!(allowed, result.is_ok());
                if result.is_ok() {
                    // Horizons never point into the past relative to `now`.
                    prop_assert!(bank.earliest(&DramCommand::Precharge) >= now
                        || matches!(bank.state(), BankState::Idle));
                }
                now += 1 + (op as Cycle) * 3; // uneven time advance
            }
        }

        #[test]
        fn streaming_a_row_takes_expected_cycles(cols in 1u64..64) {
            let timing = t();
            let mut bank = Bank::new();
            bank.issue(DramCommand::Activate { row: 0 }, 0, &timing).unwrap();
            let mut now = timing.t_rcd;
            for c in 0..cols {
                bank.issue(DramCommand::Read { column: c }, now, &timing).unwrap();
                now += timing.t_ccd;
            }
            // Total issue span: tRCD + cols × tCCD.
            prop_assert_eq!(now, timing.t_rcd + cols * timing.t_ccd);
        }
    }
}
