//! DRAM organization: the channel → pseudo-channel → bank-group → bank
//! hierarchy, row/column geometry, and linear-address mapping.

use papi_types::Bytes;
use serde::{Deserialize, Serialize};

/// Geometry of one HBM stack.
///
/// The paper's devices map onto this as:
///
/// - standard 16 GB PIM device (AttAcc 1P1B, HBM-PIM 1P2B, Attn-PIM):
///   4 channels × 4 pseudo-channels × 4 bank groups × 2 banks = 128 banks;
/// - FC-PIM device (Eq. (4) area constraint): 3 bank groups per
///   pseudo-channel → 96 banks and 12 GB.
///
/// # Example
///
/// ```
/// use papi_dram::Topology;
///
/// let t = Topology::hbm3_16gb();
/// assert_eq!(t.total_banks(), 128);
/// assert!((t.capacity().as_gib() - 16.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Independent channels per stack.
    pub channels: usize,
    /// Pseudo-channels per channel.
    pub pseudo_channels_per_channel: usize,
    /// Bank groups per pseudo-channel.
    pub bank_groups_per_pseudo_channel: usize,
    /// Banks per bank group.
    pub banks_per_bank_group: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Bytes per row (row-buffer size).
    pub row_bytes: u64,
    /// Bytes per column access (prefetch × DQ width).
    pub column_bytes: u64,
}

impl Topology {
    /// The standard 16 GB HBM3 stack with 128 banks used for AttAcc-style
    /// (1P1B), HBM-PIM-style (1P2B) and Attn-PIM devices.
    pub fn hbm3_16gb() -> Self {
        Self {
            channels: 4,
            pseudo_channels_per_channel: 4,
            bank_groups_per_pseudo_channel: 4,
            banks_per_bank_group: 2,
            rows_per_bank: 65_536, // 16 GiB / 128 banks / 2 KiB rows
            row_bytes: 2048,
            column_bytes: 32,
        }
    }

    /// The 12 GB FC-PIM die of the paper's §6.1: the Eq. (4) area
    /// constraint caps a 4P1B die at 96 banks (3 bank groups), trading a
    /// quarter of the capacity for FPU area.
    pub fn fc_pim_12gb() -> Self {
        Self {
            bank_groups_per_pseudo_channel: 3,
            ..Self::hbm3_16gb()
        }
    }

    /// Total number of banks in the stack.
    pub fn total_banks(&self) -> usize {
        self.channels
            * self.pseudo_channels_per_channel
            * self.bank_groups_per_pseudo_channel
            * self.banks_per_bank_group
    }

    /// Banks visible to a single pseudo-channel controller.
    pub fn banks_per_pseudo_channel(&self) -> usize {
        self.bank_groups_per_pseudo_channel * self.banks_per_bank_group
    }

    /// Total pseudo-channels in the stack.
    pub fn total_pseudo_channels(&self) -> usize {
        self.channels * self.pseudo_channels_per_channel
    }

    /// Column accesses needed to stream one full row.
    pub fn columns_per_row(&self) -> u64 {
        self.row_bytes / self.column_bytes
    }

    /// Total stack capacity.
    pub fn capacity(&self) -> Bytes {
        Bytes::from_u64(self.total_banks() as u64 * self.rows_per_bank * self.row_bytes)
    }

    /// Validates that the geometry is internally consistent (non-zero
    /// dimensions, row size divisible by column size).
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0
            || self.pseudo_channels_per_channel == 0
            || self.bank_groups_per_pseudo_channel == 0
            || self.banks_per_bank_group == 0
            || self.rows_per_bank == 0
        {
            return Err("all topology dimensions must be non-zero".to_owned());
        }
        if self.row_bytes == 0 || self.column_bytes == 0 {
            return Err("row and column sizes must be non-zero".to_owned());
        }
        if !self.row_bytes.is_multiple_of(self.column_bytes) {
            return Err(format!(
                "row_bytes ({}) must be a multiple of column_bytes ({})",
                self.row_bytes, self.column_bytes
            ));
        }
        Ok(())
    }

    /// Decodes a linear byte address into its bank/row/column coordinates
    /// using a Ro–Ba–Bg–Co–Pc–Ch interleaving: channel and pseudo-channel
    /// bits sit *below* the column bits, so consecutive column-granularity
    /// addresses stride across channels for bandwidth while each row's
    /// columns stay within one bank.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the device capacity.
    #[track_caller]
    pub fn decode(&self, addr: u64) -> Address {
        let cap = self.capacity().value() as u64;
        assert!(addr < cap, "address {addr:#x} beyond capacity {cap:#x}");
        let mut a = addr / self.column_bytes;
        let channel = (a % self.channels as u64) as usize;
        a /= self.channels as u64;
        let pseudo_channel = (a % self.pseudo_channels_per_channel as u64) as usize;
        a /= self.pseudo_channels_per_channel as u64;
        let col = a % self.columns_per_row();
        a /= self.columns_per_row();
        let bank_group = (a % self.bank_groups_per_pseudo_channel as u64) as usize;
        a /= self.bank_groups_per_pseudo_channel as u64;
        let bank = (a % self.banks_per_bank_group as u64) as usize;
        a /= self.banks_per_bank_group as u64;
        let row = a;
        Address {
            bank: BankAddr {
                channel,
                pseudo_channel,
                bank_group,
                bank,
            },
            row,
            column: col,
        }
    }

    /// Encodes bank/row/column coordinates back into a linear byte address
    /// (inverse of [`Topology::decode`]).
    pub fn encode(&self, address: &Address) -> u64 {
        let mut a = address.row;
        a = a * self.banks_per_bank_group as u64 + address.bank.bank as u64;
        a = a * self.bank_groups_per_pseudo_channel as u64 + address.bank.bank_group as u64;
        a = a * self.columns_per_row() + address.column;
        a = a * self.pseudo_channels_per_channel as u64 + address.bank.pseudo_channel as u64;
        a = a * self.channels as u64 + address.bank.channel as u64;
        a * self.column_bytes
    }
}

/// Coordinates of one bank within a stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankAddr {
    /// Channel index.
    pub channel: usize,
    /// Pseudo-channel index within the channel.
    pub pseudo_channel: usize,
    /// Bank-group index within the pseudo-channel.
    pub bank_group: usize,
    /// Bank index within the bank group.
    pub bank: usize,
}

impl BankAddr {
    /// Flattens the coordinates into an index in `0..topology.total_banks()`.
    pub fn flat_index(&self, topology: &Topology) -> usize {
        ((self.channel * topology.pseudo_channels_per_channel + self.pseudo_channel)
            * topology.bank_groups_per_pseudo_channel
            + self.bank_group)
            * topology.banks_per_bank_group
            + self.bank
    }
}

/// A fully decoded DRAM address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Address {
    /// Which bank the address falls in.
    pub bank: BankAddr,
    /// Row within the bank.
    pub row: u64,
    /// Column (in column-access units) within the row.
    pub column: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn standard_device_geometry() {
        let t = Topology::hbm3_16gb();
        t.validate().unwrap();
        assert_eq!(t.total_banks(), 128);
        assert_eq!(t.banks_per_pseudo_channel(), 8);
        assert_eq!(t.total_pseudo_channels(), 16);
        assert_eq!(t.columns_per_row(), 64);
        assert!((t.capacity().as_gib() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn fc_pim_device_geometry_matches_eq4() {
        let t = Topology::fc_pim_12gb();
        t.validate().unwrap();
        // Eq. (4): m(4 × 0.1025 + 0.83) <= 121  =>  m <= 97, paper picks 96.
        assert_eq!(t.total_banks(), 96);
        assert!((t.capacity().as_gib() - 12.0).abs() < 1e-9);
        assert_eq!(t.bank_groups_per_pseudo_channel, 3);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut t = Topology::hbm3_16gb();
        t.row_bytes = 1000; // not a multiple of 32
        assert!(t.validate().is_err());
        let mut t = Topology::hbm3_16gb();
        t.channels = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn sequential_addresses_interleave_channels() {
        let t = Topology::hbm3_16gb();
        let a0 = t.decode(0);
        let a1 = t.decode(t.column_bytes);
        assert_eq!(a0.bank.channel, 0);
        assert_eq!(a1.bank.channel, 1);
        assert_eq!(a0.row, a1.row);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn decode_out_of_range_panics() {
        let t = Topology::hbm3_16gb();
        let _ = t.decode(t.capacity().value() as u64);
    }

    #[test]
    fn flat_index_is_dense_and_unique() {
        let t = Topology::hbm3_16gb();
        let mut seen = vec![false; t.total_banks()];
        for ch in 0..t.channels {
            for pc in 0..t.pseudo_channels_per_channel {
                for bg in 0..t.bank_groups_per_pseudo_channel {
                    for b in 0..t.banks_per_bank_group {
                        let idx = BankAddr {
                            channel: ch,
                            pseudo_channel: pc,
                            bank_group: bg,
                            bank: b,
                        }
                        .flat_index(&t);
                        assert!(!seen[idx], "duplicate flat index {idx}");
                        seen[idx] = true;
                    }
                }
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    proptest! {
        #[test]
        fn decode_encode_roundtrip(raw in 0u64..(16u64 << 30)) {
            let t = Topology::hbm3_16gb();
            // Align to column granularity: decode ignores intra-column offset.
            let addr = raw - raw % t.column_bytes;
            let decoded = t.decode(addr);
            prop_assert_eq!(t.encode(&decoded), addr);
        }

        #[test]
        fn decode_fields_in_range(raw in 0u64..(12u64 << 30)) {
            let t = Topology::fc_pim_12gb();
            let d = t.decode(raw);
            prop_assert!(d.bank.channel < t.channels);
            prop_assert!(d.bank.pseudo_channel < t.pseudo_channels_per_channel);
            prop_assert!(d.bank.bank_group < t.bank_groups_per_pseudo_channel);
            prop_assert!(d.bank.bank < t.banks_per_bank_group);
            prop_assert!(d.row < t.rows_per_bank);
            prop_assert!(d.column < t.columns_per_row());
        }
    }
}
