//! HBM3 timing parameters.
//!
//! All constraints are stored in integer cycles of the command clock
//! (`t_ck`). The defaults model an HBM3 stack with 5.2 Gbps/pin signalling
//! — the configuration the PAPI paper evaluates — with a 666 MHz bank
//! streaming clock (one 32-byte column access every other command-clock
//! cycle), matching AttAcc's near-bank processing rate of one 16-lane FP16
//! MAC per 1.5 ns per bank.

use papi_types::{Frequency, Time};
use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in command-clock cycles.
pub type Cycle = u64;

/// Validation error for an inconsistent [`TimingParams`] set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingError {
    message: String,
}

impl TimingError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TimingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "inconsistent DRAM timing: {}", self.message)
    }
}

impl std::error::Error for TimingError {}

/// JEDEC-style DRAM timing constraints in command-clock cycles.
///
/// # Example
///
/// ```
/// use papi_dram::TimingParams;
///
/// let t = TimingParams::hbm3();
/// t.validate().unwrap();
/// assert_eq!(t.t_rc, t.t_ras + t.t_rp);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Command clock period.
    pub t_ck: Time,
    /// ACT → internal RD/WR delay (row-to-column delay).
    pub t_rcd: Cycle,
    /// PRE → ACT delay (row precharge).
    pub t_rp: Cycle,
    /// ACT → PRE minimum row-open time.
    pub t_ras: Cycle,
    /// ACT → ACT same bank (row cycle); must equal `t_ras + t_rp`.
    pub t_rc: Cycle,
    /// RD → RD same bank (column-to-column, streaming interval).
    pub t_ccd: Cycle,
    /// Data-bus occupancy of one column burst in shared-bus mode.
    pub t_bus: Cycle,
    /// ACT → ACT different banks (activation-to-activation delay).
    pub t_rrd: Cycle,
    /// Four-activation window: at most 4 ACTs in any `t_faw` window.
    pub t_faw: Cycle,
    /// RD → PRE delay (read-to-precharge).
    pub t_rtp: Cycle,
    /// End of write burst → PRE delay (write recovery).
    pub t_wr: Cycle,
    /// RD command → first data beat (CAS latency).
    pub t_cl: Cycle,
    /// Refresh cycle time (all banks busy during refresh).
    pub t_rfc: Cycle,
    /// Average refresh interval (one REF command every `t_refi` cycles).
    pub t_refi: Cycle,
}

impl TimingParams {
    /// HBM3 preset used throughout the PAPI reproduction.
    ///
    /// The command clock is 1.333 GHz (`t_ck` = 0.75 ns); a 32-byte column
    /// access issues every `t_ccd` = 2 cycles = 1.5 ns, i.e. a 666 MHz
    /// per-bank streaming rate — the paper's FPU clock.
    pub fn hbm3() -> Self {
        Self {
            t_ck: Time::from_nanos(0.75),
            t_rcd: 19,    // ~14.3 ns
            t_rp: 19,     // ~14.3 ns
            t_ras: 38,    // ~28.5 ns
            t_rc: 57,     // ~42.8 ns
            t_ccd: 2,     // 1.5 ns  (666 MHz streaming)
            t_bus: 1,     // one burst occupies the shared pseudo-channel bus for 0.75 ns
            t_rrd: 4,     // ~3 ns
            t_faw: 16,    // ~12 ns
            t_rtp: 8,     // ~6 ns
            t_wr: 21,     // ~15.8 ns
            t_cl: 20,     // ~15 ns
            t_rfc: 347,   // ~260 ns
            t_refi: 5200, // ~3.9 us
        }
    }

    /// Checks internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`TimingError`] describing the first violated relation
    /// (e.g. `t_rc != t_ras + t_rp`, zero clock period, or a refresh
    /// interval shorter than the refresh operation itself).
    pub fn validate(&self) -> Result<(), TimingError> {
        if self.t_ck.is_zero() {
            return Err(TimingError::new("t_ck must be positive"));
        }
        if self.t_rc != self.t_ras + self.t_rp {
            return Err(TimingError::new(format!(
                "t_rc ({}) must equal t_ras + t_rp ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            )));
        }
        if self.t_ccd == 0 {
            return Err(TimingError::new("t_ccd must be at least 1"));
        }
        if self.t_refi <= self.t_rfc {
            return Err(TimingError::new(
                "t_refi must exceed t_rfc or the device only refreshes",
            ));
        }
        if self.t_faw < self.t_rrd {
            return Err(TimingError::new("t_faw must be at least t_rrd"));
        }
        if self.t_ras < self.t_rcd {
            return Err(TimingError::new("t_ras must be at least t_rcd"));
        }
        Ok(())
    }

    /// Converts a cycle count into wall-clock time.
    pub fn cycles_to_time(&self, cycles: Cycle) -> Time {
        self.t_ck * cycles as f64
    }

    /// The command-clock frequency.
    pub fn clock(&self) -> Frequency {
        Frequency::new(1.0 / self.t_ck.as_secs())
    }

    /// The per-bank streaming frequency (one column access per `t_ccd`).
    pub fn streaming_clock(&self) -> Frequency {
        Frequency::new(1.0 / (self.t_ck.as_secs() * self.t_ccd as f64))
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::hbm3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm3_preset_is_valid() {
        TimingParams::hbm3().validate().unwrap();
    }

    #[test]
    fn hbm3_streaming_rate_is_666mhz() {
        let t = TimingParams::hbm3();
        assert!((t.streaming_clock().as_mhz() - 666.7).abs() < 1.0);
    }

    #[test]
    fn cycles_to_time_scales_linearly() {
        let t = TimingParams::hbm3();
        let one = t.cycles_to_time(1);
        let thousand = t.cycles_to_time(1000);
        assert!((thousand.as_nanos() - 1000.0 * one.as_nanos()).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_trc_mismatch() {
        let mut t = TimingParams::hbm3();
        t.t_rc += 1;
        let err = t.validate().unwrap_err();
        assert!(err.to_string().contains("t_rc"));
    }

    #[test]
    fn validation_catches_refresh_starvation() {
        let mut t = TimingParams::hbm3();
        t.t_refi = t.t_rfc;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_ccd() {
        let mut t = TimingParams::hbm3();
        t.t_ccd = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_catches_faw_smaller_than_rrd() {
        let mut t = TimingParams::hbm3();
        t.t_faw = t.t_rrd - 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn clock_matches_period() {
        let t = TimingParams::hbm3();
        assert!((t.clock().period().as_nanos() - t.t_ck.as_nanos()).abs() < 1e-12);
    }
}
