//! FR-FCFS memory controller.
//!
//! One [`Controller`] models the command sequencer of a pseudo-channel (or
//! of a whole PIM die in [`BusModel::PerBankPim`] mode) and the set of
//! banks behind it. Scheduling is first-ready, first-come-first-served
//! with an open-page row policy: row-buffer hits issue ahead of older
//! misses, conflicts precharge, and refresh pre-empts everything.
//!
//! Two bus models are supported:
//!
//! - [`BusModel::SharedDataBus`] — conventional host access: one command
//!   per cycle, and read/write bursts serialize on the shared data bus.
//!   This is how a GPU sees HBM.
//! - [`BusModel::PerBankPim`] — near-bank PIM execution: every bank
//!   streams into its own processing unit, so there is no shared data
//!   bus; only the activation window (tRRD/tFAW) and refresh are shared.
//!   This is what gives PIM its bandwidth advantage, and deriving *how
//!   much* is the whole point of [`crate::derive`].

use crate::bank::{Bank, BankState};
use crate::command::{DramCommand, MemRequest, RequestKind};
use crate::energy::EnergyCounter;
use crate::timing::{Cycle, TimingParams};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How read/write data leaves the banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusModel {
    /// Conventional shared data bus (one burst at a time, one command per
    /// cycle across the whole controller).
    SharedDataBus,
    /// Near-bank PIM: each bank streams to its own consumer; no shared
    /// data bus and per-bank command sequencing.
    PerBankPim,
}

/// Aggregate statistics for a controller run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Requests completed (data transferred).
    pub completed: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that found their bank idle.
    pub row_misses: u64,
    /// Requests that had to close another row first.
    pub row_conflicts: u64,
    /// Total DRAM commands issued.
    pub commands_issued: u64,
    /// All-bank refresh operations performed.
    pub refreshes: u64,
    /// Bytes moved by completed requests.
    pub bytes_transferred: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    req: MemRequest,
    classified: bool,
}

/// Error returned when a drain exceeds its cycle budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainTimeout {
    /// Cycles simulated before giving up.
    pub cycles: Cycle,
    /// Requests still outstanding.
    pub outstanding: usize,
}

impl core::fmt::Display for DrainTimeout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "controller failed to drain within {} cycles ({} requests left)",
            self.cycles, self.outstanding
        )
    }
}

impl std::error::Error for DrainTimeout {}

/// A cycle-level DRAM command scheduler over a set of banks.
///
/// # Example
///
/// ```
/// use papi_dram::{BusModel, Controller, MemRequest, TimingParams};
///
/// let mut ctrl = Controller::new(TimingParams::hbm3(), 8, 32, BusModel::PerBankPim);
/// // Stream two full rows on every bank.
/// for bank in 0..8 {
///     for row in 0..2 {
///         ctrl.enqueue_row_stream(bank, row, 64);
///     }
/// }
/// let cycles = ctrl.run_until_drained(1_000_000).unwrap();
/// assert!(cycles > 0);
/// assert_eq!(ctrl.stats().completed, 8 * 2 * 64);
/// ```
#[derive(Debug, Clone)]
pub struct Controller {
    timing: TimingParams,
    bus: BusModel,
    banks: Vec<Bank>,
    queues: Vec<VecDeque<Pending>>,
    /// Arrival order of bank indices; FR-FCFS ages by arrival.
    arrival: VecDeque<usize>,
    outstanding: usize,
    now: Cycle,
    data_bus_free_at: Cycle,
    act_history: VecDeque<Cycle>,
    next_refresh_due: Cycle,
    refreshing_until: Option<Cycle>,
    refresh_enabled: bool,
    column_bytes: u64,
    last_completion: Cycle,
    energy: EnergyCounter,
    stats: ControllerStats,
}

impl Controller {
    /// Creates a controller over `banks` banks with `column_bytes` moved
    /// per request.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`, `column_bytes == 0`, or the timing set is
    /// internally inconsistent.
    #[track_caller]
    pub fn new(timing: TimingParams, banks: usize, column_bytes: u64, bus: BusModel) -> Self {
        assert!(banks > 0, "controller needs at least one bank");
        assert!(column_bytes > 0, "column_bytes must be non-zero");
        timing.validate().expect("invalid timing parameters");
        let next_refresh_due = timing.t_refi;
        Self {
            timing,
            bus,
            banks: (0..banks).map(|_| Bank::new()).collect(),
            queues: (0..banks).map(|_| VecDeque::new()).collect(),
            arrival: VecDeque::new(),
            outstanding: 0,
            now: 0,
            data_bus_free_at: 0,
            act_history: VecDeque::new(),
            next_refresh_due,
            refreshing_until: None,
            refresh_enabled: true,
            column_bytes,
            last_completion: 0,
            energy: EnergyCounter::default(),
            stats: ControllerStats::default(),
        }
    }

    /// Disables periodic refresh (useful for isolating timing effects in
    /// unit tests; real derivations keep it on).
    pub fn set_refresh_enabled(&mut self, enabled: bool) {
        self.refresh_enabled = enabled;
    }

    /// Number of banks behind this controller.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Cycle at which the last data beat completed.
    pub fn last_completion(&self) -> Cycle {
        self.last_completion
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Energy event counters gathered so far.
    pub fn energy(&self) -> EnergyCounter {
        self.energy
    }

    /// Requests not yet completed.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Adds a request to the controller's queues.
    ///
    /// # Panics
    ///
    /// Panics if the request's bank index is out of range.
    #[track_caller]
    pub fn enqueue(&mut self, req: MemRequest) {
        assert!(
            req.bank < self.banks.len(),
            "bank {} out of range ({} banks)",
            req.bank,
            self.banks.len()
        );
        self.queues[req.bank].push_back(Pending {
            req,
            classified: false,
        });
        self.arrival.push_back(req.bank);
        self.outstanding += 1;
    }

    /// Enqueues sequential reads covering `columns` columns of one row —
    /// the access pattern of a PIM GEMV streaming a weight row.
    pub fn enqueue_row_stream(&mut self, bank: usize, row: u64, columns: u64) {
        for col in 0..columns {
            self.enqueue(MemRequest::read(bank, row, col));
        }
    }

    fn can_activate_shared(&self, now: Cycle) -> bool {
        // tRRD: distance from the most recent ACT anywhere in the set.
        if let Some(&last) = self.act_history.back() {
            if now < last + self.timing.t_rrd {
                return false;
            }
        }
        // tFAW: at most 4 ACTs in any rolling window.
        let window_start = now.saturating_sub(self.timing.t_faw - 1);
        let in_window = self
            .act_history
            .iter()
            .filter(|&&t| t >= window_start)
            .count();
        in_window < 4
    }

    fn record_activate(&mut self, now: Cycle) {
        self.act_history.push_back(now);
        // Keep only what tFAW can still see.
        while let Some(&front) = self.act_history.front() {
            if front + self.timing.t_faw <= now {
                self.act_history.pop_front();
            } else {
                break;
            }
        }
    }

    /// The next command the head request of `bank`'s queue needs, if any.
    fn needed_command(&self, bank: usize) -> Option<DramCommand> {
        let head = self.queues[bank].front()?;
        Some(match self.banks[bank].state() {
            BankState::Idle => DramCommand::Activate { row: head.req.row },
            BankState::Active { row } if row == head.req.row => match head.req.kind {
                RequestKind::Read => DramCommand::Read {
                    column: head.req.column,
                },
                RequestKind::Write => DramCommand::Write {
                    column: head.req.column,
                },
            },
            BankState::Active { .. } => DramCommand::Precharge,
        })
    }

    fn classify(&mut self, bank: usize, cmd: &DramCommand) {
        let Some(head) = self.queues[bank].front_mut() else {
            return;
        };
        if head.classified {
            return;
        }
        head.classified = true;
        match cmd {
            DramCommand::Read { .. } | DramCommand::Write { .. } => self.stats.row_hits += 1,
            DramCommand::Activate { .. } => self.stats.row_misses += 1,
            DramCommand::Precharge => self.stats.row_conflicts += 1,
            DramCommand::Refresh => {}
        }
    }

    /// Issues `cmd` on `bank` at the current cycle, with all shared-state
    /// bookkeeping. Caller must have verified issuability.
    fn issue(&mut self, bank: usize, cmd: DramCommand) {
        self.classify(bank, &cmd);
        let completion = self.banks[bank]
            .issue(cmd, self.now, &self.timing)
            .expect("scheduler picked an illegal command; this is a bug");
        self.stats.commands_issued += 1;
        match cmd {
            DramCommand::Activate { .. } => {
                self.energy.activations += 1;
                self.record_activate(self.now);
            }
            DramCommand::Read { .. } | DramCommand::Write { .. } => {
                match cmd {
                    DramCommand::Read { .. } => self.energy.read_bytes += self.column_bytes,
                    _ => self.energy.write_bytes += self.column_bytes,
                }
                if self.bus == BusModel::SharedDataBus {
                    self.energy.io_bytes += self.column_bytes;
                    // Bursts pipeline behind CAS latency: two reads t_bus
                    // apart occupy back-to-back bus slots, so occupancy is
                    // tracked in command-issue coordinates.
                    self.data_bus_free_at = self.now + self.timing.t_bus;
                }
                // Request completes.
                self.queues[bank].pop_front();
                // Drop one arrival token for this bank.
                if let Some(pos) = self.arrival.iter().position(|&b| b == bank) {
                    self.arrival.remove(pos);
                }
                self.outstanding -= 1;
                self.stats.completed += 1;
                self.stats.bytes_transferred += self.column_bytes;
                self.last_completion = self.last_completion.max(completion);
            }
            DramCommand::Precharge => {}
            DramCommand::Refresh => {}
        }
    }

    /// Whether `cmd` may issue on `bank` right now, including shared
    /// constraints (activation window, data bus).
    fn issuable(&self, bank: usize, cmd: &DramCommand) -> bool {
        if !self.banks[bank].can_issue(cmd, self.now) {
            return false;
        }
        match cmd {
            DramCommand::Activate { .. } => self.can_activate_shared(self.now),
            DramCommand::Read { .. } | DramCommand::Write { .. } => {
                self.bus == BusModel::PerBankPim || self.now >= self.data_bus_free_at
            }
            _ => true,
        }
    }

    /// Advances the refresh state machine. Returns `true` if refresh is in
    /// control of this cycle.
    fn refresh_tick(&mut self) -> bool {
        if let Some(until) = self.refreshing_until {
            if self.now < until {
                return true;
            }
            self.refreshing_until = None;
        }
        if !self.refresh_enabled || self.now < self.next_refresh_due {
            return false;
        }
        // Close any open banks first (one PRE per cycle on the shared bus,
        // all at once in PIM mode).
        let mut all_idle = true;
        for i in 0..self.banks.len() {
            if matches!(self.banks[i].state(), BankState::Active { .. }) {
                all_idle = false;
                if self.banks[i].can_issue(&DramCommand::Precharge, self.now) {
                    self.issue(i, DramCommand::Precharge);
                    if self.bus == BusModel::SharedDataBus {
                        break;
                    }
                }
            }
        }
        if !all_idle {
            return true;
        }
        // All banks idle: refresh together if every bank is ready.
        if self
            .banks
            .iter()
            .all(|b| b.can_issue(&DramCommand::Refresh, self.now))
        {
            for i in 0..self.banks.len() {
                self.banks[i]
                    .issue(DramCommand::Refresh, self.now, &self.timing)
                    .expect("refresh on idle bank must succeed");
                self.energy.bank_refreshes += 1;
            }
            self.stats.refreshes += 1;
            self.stats.commands_issued += self.banks.len() as u64;
            self.refreshing_until = Some(self.now + self.timing.t_rfc);
            self.next_refresh_due += self.timing.t_refi;
        }
        true
    }

    /// Simulates one cycle.
    pub fn tick(&mut self) {
        if self.refresh_tick() {
            self.now += 1;
            return;
        }
        match self.bus {
            BusModel::SharedDataBus => self.tick_shared(),
            BusModel::PerBankPim => self.tick_pim(),
        }
        self.now += 1;
    }

    /// Shared bus: one command per cycle. Row hits first (FR), then the
    /// oldest request's needed command (FCFS).
    fn tick_shared(&mut self) {
        // Pass 1: row hits, oldest first.
        let mut seen = vec![false; self.banks.len()];
        for &bank in &self.arrival {
            if seen[bank] {
                continue;
            }
            seen[bank] = true;
            if let Some(cmd @ (DramCommand::Read { .. } | DramCommand::Write { .. })) =
                self.needed_command(bank)
            {
                if self.issuable(bank, &cmd) {
                    self.issue(bank, cmd);
                    return;
                }
            }
        }
        // Pass 2: oldest request's preparatory command.
        seen.fill(false);
        for i in 0..self.arrival.len() {
            let bank = self.arrival[i];
            if seen[bank] {
                continue;
            }
            seen[bank] = true;
            if let Some(cmd) = self.needed_command(bank) {
                if self.issuable(bank, &cmd) {
                    self.issue(bank, cmd);
                    return;
                }
            }
        }
    }

    /// PIM mode: every bank has its own sequencer; shared constraints are
    /// the activation window and refresh.
    fn tick_pim(&mut self) {
        for bank in 0..self.banks.len() {
            if let Some(cmd) = self.needed_command(bank) {
                if self.issuable(bank, &cmd) {
                    self.issue(bank, cmd);
                }
            }
        }
    }

    /// Runs until every request has completed.
    ///
    /// # Errors
    ///
    /// Returns [`DrainTimeout`] if the queues fail to drain within
    /// `max_cycles` — which indicates either an unreasonably small budget
    /// or a scheduler deadlock (a bug the tests would catch).
    pub fn run_until_drained(&mut self, max_cycles: Cycle) -> Result<Cycle, DrainTimeout> {
        let start = self.now;
        while self.outstanding > 0 {
            if self.now - start >= max_cycles {
                return Err(DrainTimeout {
                    cycles: self.now - start,
                    outstanding: self.outstanding,
                });
            }
            self.tick();
        }
        Ok(self.last_completion.max(self.now) - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming_controller(bus: BusModel, banks: usize) -> Controller {
        Controller::new(TimingParams::hbm3(), banks, 32, bus)
    }

    #[test]
    fn single_read_completes() {
        let mut c = streaming_controller(BusModel::SharedDataBus, 4);
        c.enqueue(MemRequest::read(2, 10, 0));
        let cycles = c.run_until_drained(10_000).unwrap();
        let t = TimingParams::hbm3();
        // ACT at 0 (first schedulable cycle), RD at tRCD, data at +tCL+tBUS.
        assert_eq!(c.stats().completed, 1);
        assert_eq!(c.stats().row_misses, 1);
        assert!(cycles >= t.t_rcd + t.t_cl);
    }

    #[test]
    fn row_hits_are_prioritized_and_counted() {
        let mut c = streaming_controller(BusModel::SharedDataBus, 2);
        // Two to the same row (miss + hit), one conflict after.
        c.enqueue(MemRequest::read(0, 5, 0));
        c.enqueue(MemRequest::read(0, 5, 1));
        c.enqueue(MemRequest::read(0, 9, 0));
        c.run_until_drained(100_000).unwrap();
        let s = c.stats();
        assert_eq!(s.completed, 3);
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_conflicts, 1);
    }

    #[test]
    fn pim_mode_outperforms_shared_bus_on_parallel_streams() {
        let t = TimingParams::hbm3();
        let rows = 4u64;
        let cols = 64u64;
        let mk = |bus| {
            let mut c = Controller::new(t.clone(), 8, 32, bus);
            for bank in 0..8 {
                for row in 0..rows {
                    c.enqueue_row_stream(bank, row, cols);
                }
            }
            c.run_until_drained(10_000_000).unwrap()
        };
        let shared = mk(BusModel::SharedDataBus);
        let pim = mk(BusModel::PerBankPim);
        // 8 banks streaming near-bank should be several times faster than
        // the same pattern serialized over one data bus.
        assert!(
            pim * 3 < shared,
            "pim={pim} cycles vs shared={shared} cycles"
        );
    }

    #[test]
    fn refresh_fires_and_blocks_progress() {
        let t = TimingParams::hbm3();
        let mut c = Controller::new(t.clone(), 2, 32, BusModel::PerBankPim);
        // Enough work to cross a refresh interval.
        let rows = (2 * t.t_refi / (t.t_rcd + 64 * t.t_ccd)) + 2;
        for row in 0..rows {
            c.enqueue_row_stream(0, row, 64);
        }
        c.run_until_drained(100_000_000).unwrap();
        assert!(c.stats().refreshes >= 1, "no refresh in a long run");
        assert_eq!(c.energy().bank_refreshes, c.stats().refreshes * 2);
    }

    #[test]
    fn refresh_can_be_disabled() {
        let t = TimingParams::hbm3();
        let mut c = Controller::new(t, 1, 32, BusModel::PerBankPim);
        c.set_refresh_enabled(false);
        for row in 0..400 {
            c.enqueue_row_stream(0, row, 64);
        }
        c.run_until_drained(100_000_000).unwrap();
        assert_eq!(c.stats().refreshes, 0);
    }

    #[test]
    fn energy_counters_track_io_only_on_shared_bus() {
        let run = |bus| {
            let mut c = streaming_controller(bus, 2);
            c.enqueue_row_stream(0, 0, 8);
            c.run_until_drained(1_000_000).unwrap();
            c.energy()
        };
        let shared = run(BusModel::SharedDataBus);
        let pim = run(BusModel::PerBankPim);
        assert_eq!(shared.io_bytes, 8 * 32);
        assert_eq!(pim.io_bytes, 0);
        assert_eq!(shared.read_bytes, pim.read_bytes);
    }

    #[test]
    fn writes_complete_and_count() {
        let mut c = streaming_controller(BusModel::SharedDataBus, 2);
        c.enqueue(MemRequest::write(1, 3, 0));
        c.enqueue(MemRequest::write(1, 3, 1));
        c.run_until_drained(100_000).unwrap();
        assert_eq!(c.stats().completed, 2);
        assert_eq!(c.energy().write_bytes, 64);
    }

    #[test]
    fn drain_timeout_reports_outstanding() {
        let mut c = streaming_controller(BusModel::SharedDataBus, 1);
        for row in 0..64 {
            c.enqueue_row_stream(0, row, 64);
        }
        let err = c.run_until_drained(10).unwrap_err();
        assert!(err.outstanding > 0);
        assert!(err.to_string().contains("drain"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn enqueue_bad_bank_panics() {
        let mut c = streaming_controller(BusModel::SharedDataBus, 2);
        c.enqueue(MemRequest::read(2, 0, 0));
    }

    #[test]
    fn faw_limits_activation_burst() {
        // 8 banks all wanting to activate at once: with tFAW=16 and
        // tRRD=4, the 5th ACT must wait for the window.
        let t = TimingParams::hbm3();
        let mut c = Controller::new(t.clone(), 8, 32, BusModel::PerBankPim);
        for bank in 0..8 {
            c.enqueue(MemRequest::read(bank, 0, 0));
        }
        // Simulate until all ACTs would have been issued.
        for _ in 0..t.t_faw {
            c.tick();
        }
        let acts = c.energy().activations;
        assert!(
            acts <= 4,
            "tFAW violated: {acts} activations inside one window"
        );
    }

    #[test]
    fn completed_bytes_match_requests() {
        let mut c = streaming_controller(BusModel::PerBankPim, 4);
        for bank in 0..4 {
            c.enqueue_row_stream(bank, 0, 16);
        }
        c.run_until_drained(1_000_000).unwrap();
        assert_eq!(c.stats().bytes_transferred, 4 * 16 * 32);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Any random request stream drains — no schedule deadlocks —
            /// and every request is classified exactly once.
            #[test]
            fn random_streams_always_drain(
                reqs in proptest::collection::vec((0usize..4, 0u64..8, 0u64..16, proptest::bool::ANY), 1..128),
                pim in proptest::bool::ANY,
            ) {
                let bus = if pim { BusModel::PerBankPim } else { BusModel::SharedDataBus };
                let mut c = Controller::new(TimingParams::hbm3(), 4, 32, bus);
                for (bank, row, col, write) in &reqs {
                    c.enqueue(if *write {
                        MemRequest::write(*bank, *row, *col)
                    } else {
                        MemRequest::read(*bank, *row, *col)
                    });
                }
                let cycles = c.run_until_drained(50_000_000).unwrap();
                let s = c.stats();
                prop_assert_eq!(s.completed as usize, reqs.len());
                prop_assert_eq!(
                    s.row_hits + s.row_misses + s.row_conflicts,
                    reqs.len() as u64
                );
                prop_assert!(cycles > 0);
            }

            /// PIM mode never loses to the shared bus on the same stream.
            #[test]
            fn pim_never_slower_than_shared(
                rows in 1u64..6,
                banks in 1usize..8,
            ) {
                let run = |bus| {
                    let mut c = Controller::new(TimingParams::hbm3(), banks, 32, bus);
                    for bank in 0..banks {
                        for row in 0..rows {
                            c.enqueue_row_stream(bank, row, 32);
                        }
                    }
                    c.run_until_drained(50_000_000).unwrap()
                };
                prop_assert!(run(BusModel::PerBankPim) <= run(BusModel::SharedDataBus));
            }

            /// More banks never make a fixed-size PIM workload slower.
            #[test]
            fn more_banks_never_slower(banks in 1usize..8) {
                let run = |n: usize| {
                    let mut c = Controller::new(TimingParams::hbm3(), n, 32, BusModel::PerBankPim);
                    // Fixed 8 row-streams spread round-robin.
                    for i in 0..8u64 {
                        c.enqueue_row_stream(i as usize % n, i, 32);
                    }
                    c.run_until_drained(50_000_000).unwrap()
                };
                prop_assert!(run(banks + 1) <= run(banks) + 1);
            }
        }
    }
}
