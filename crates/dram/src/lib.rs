//! `papi-dram` — a cycle-level HBM3 DRAM timing and energy model.
//!
//! The PAPI paper evaluates its designs on a simulator built on
//! Ramulator 2.0 extended with the AttAcc PIM model. This crate is the
//! equivalent substrate, written from scratch:
//!
//! - [`timing`] — JEDEC-style HBM3 timing parameters (tRCD, tRP, tRAS,
//!   tCCD, tRRD, tFAW, tRFC, tREFI, …) expressed in integer command-clock
//!   cycles, with internal-consistency validation.
//! - [`organization`] — the channel → pseudo-channel → bank-group → bank
//!   hierarchy, row/column geometry and linear-address mapping.
//! - [`bank`] — a per-bank state machine that enforces every timing
//!   constraint on ACT/PRE/RD/WR/REF command sequences.
//! - [`controller`] — an FR-FCFS memory controller operating either with a
//!   shared external data bus (conventional host access) or in *per-bank
//!   PIM mode*, where each bank streams into its near-bank processing unit
//!   and only activation-window constraints (tRRD/tFAW) and refresh are
//!   shared.
//! - [`energy`] — per-command energy accounting (activation, column
//!   access, I/O, refresh, background power).
//! - [`device`] — assembled HBM3 stack presets (16 GB / 128-bank PIM
//!   devices and the 12 GB / 96-bank FC-PIM die of the paper's Eq. (4)).
//! - [`derive`](mod@crate::derive) — micro-simulations that *derive* the effective streaming
//!   bandwidths used by the analytical PIM kernel model, so the end-to-end
//!   experiments rest on the cycle-level model rather than on datasheet
//!   constants.
//!
//! # Example: derive the per-bank PIM streaming bandwidth
//!
//! ```
//! use papi_dram::{derive, HbmDevice};
//!
//! let device = HbmDevice::hbm3_16gb();
//! let bw = derive::pim_streaming_bandwidth(&device, 8, 32);
//! // One 32-byte column every 1.5 ns minus row-turnaround overhead:
//! assert!(bw.per_bank.as_gb_per_sec() > 12.0);
//! assert!(bw.per_bank.as_gb_per_sec() < 21.4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod command;
pub mod controller;
pub mod derive;
pub mod device;
pub mod energy;
pub mod organization;
pub mod timing;

pub use bank::{Bank, BankState};
pub use command::{DramCommand, MemRequest, RequestKind};
pub use controller::{BusModel, Controller, ControllerStats};
pub use device::HbmDevice;
pub use energy::{DramEnergyBreakdown, EnergyCounter, EnergyParams};
pub use organization::{Address, BankAddr, Topology};
pub use timing::{Cycle, TimingError, TimingParams};
