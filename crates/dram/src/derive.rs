//! Effective-bandwidth derivation.
//!
//! The analytical PIM kernel model in `papi-pim` needs *sustained*
//! bandwidths, not datasheet peaks: row activation, precharge, refresh and
//! the activation window all eat into the 21.3 GB/s a bank can
//! theoretically stream. Rather than hard-coding an efficiency factor,
//! this module runs short micro-simulations on the cycle-level
//! [`Controller`] and measures what actually comes out — so the
//! end-to-end PAPI experiments are grounded in the DRAM timing model.

use crate::controller::{BusModel, Controller};
use crate::device::HbmDevice;
use papi_types::{Bandwidth, Time};
use serde::{Deserialize, Serialize};

/// Result of a bandwidth micro-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerivedBandwidth {
    /// Sustained bandwidth of a single bank.
    pub per_bank: Bandwidth,
    /// Sustained bandwidth of the simulated controller (all its banks).
    pub controller_aggregate: Bandwidth,
    /// Extrapolated sustained bandwidth of the whole device (all banks /
    /// all pseudo-channels).
    pub device_aggregate: Bandwidth,
    /// Fraction of the theoretical peak achieved (0..1].
    pub efficiency: f64,
    /// Wall-clock time the micro-simulation covered.
    pub simulated: Time,
}

/// Derives the sustained *near-bank* streaming bandwidth: every bank of
/// one pseudo-channel streams `rows_per_bank` full rows into its local
/// consumer, as a PIM GEMV does with weight rows.
///
/// # Panics
///
/// Panics if `banks` is zero or exceeds the device's banks per
/// pseudo-channel, or if `rows_per_bank` is zero.
#[track_caller]
pub fn pim_streaming_bandwidth(
    device: &HbmDevice,
    banks: usize,
    rows_per_bank: u64,
) -> DerivedBandwidth {
    assert!(rows_per_bank > 0, "need at least one row to stream");
    assert!(
        banks > 0 && banks <= device.topology.banks_per_pseudo_channel(),
        "banks must be in 1..={}",
        device.topology.banks_per_pseudo_channel()
    );
    let mut ctrl = Controller::new(
        device.timing.clone(),
        banks,
        device.topology.column_bytes,
        BusModel::PerBankPim,
    );
    stream_rows(
        &mut ctrl,
        banks,
        rows_per_bank,
        device.topology.columns_per_row(),
    );
    finish(device, ctrl, banks, device.topology.total_banks())
}

/// Derives the sustained *external* (shared data bus) bandwidth of one
/// pseudo-channel under the same streaming pattern, extrapolated to the
/// whole device. This approximates what a host accelerator can pull from
/// the stack.
#[track_caller]
pub fn external_streaming_bandwidth(
    device: &HbmDevice,
    banks: usize,
    rows_per_bank: u64,
) -> DerivedBandwidth {
    assert!(rows_per_bank > 0, "need at least one row to stream");
    assert!(
        banks > 0 && banks <= device.topology.banks_per_pseudo_channel(),
        "banks must be in 1..={}",
        device.topology.banks_per_pseudo_channel()
    );
    let mut ctrl = Controller::new(
        device.timing.clone(),
        banks,
        device.topology.column_bytes,
        BusModel::SharedDataBus,
    );
    stream_rows(
        &mut ctrl,
        banks,
        rows_per_bank,
        device.topology.columns_per_row(),
    );
    finish(
        device,
        ctrl,
        banks,
        // Extrapolate by pseudo-channel count: each has its own bus.
        device.topology.total_pseudo_channels() * banks,
    )
}

/// Derives bandwidth under a row-conflict-heavy pattern: every access goes
/// to a different row of the same bank, defeating the row buffer. Used to
/// sanity-check that the model punishes locality-free access.
pub fn random_row_bandwidth(device: &HbmDevice, accesses: u64) -> DerivedBandwidth {
    let mut ctrl = Controller::new(
        device.timing.clone(),
        1,
        device.topology.column_bytes,
        BusModel::PerBankPim,
    );
    for i in 0..accesses {
        ctrl.enqueue(crate::MemRequest::read(
            0,
            i % device.topology.rows_per_bank,
            0,
        ));
    }
    finish(device, ctrl, 1, device.topology.total_banks())
}

fn stream_rows(ctrl: &mut Controller, banks: usize, rows: u64, columns: u64) {
    for bank in 0..banks {
        for row in 0..rows {
            ctrl.enqueue_row_stream(bank, row, columns);
        }
    }
}

fn finish(
    device: &HbmDevice,
    mut ctrl: Controller,
    banks: usize,
    device_scale: usize,
) -> DerivedBandwidth {
    let cycles = ctrl
        .run_until_drained(500_000_000)
        .expect("micro-simulation failed to drain; timing deadlock bug");
    let elapsed = device.timing.cycles_to_time(cycles);
    let bytes = ctrl.stats().bytes_transferred as f64;
    let aggregate = Bandwidth::new(bytes / elapsed.as_secs());
    let per_bank = aggregate / banks as f64;
    let device_aggregate = per_bank * device_scale as f64;
    let efficiency = per_bank.value() / device.peak_bank_bandwidth().value();
    DerivedBandwidth {
        per_bank,
        controller_aggregate: aggregate,
        device_aggregate,
        efficiency,
        simulated: elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pim_streaming_efficiency_is_realistic() {
        let d = HbmDevice::hbm3_16gb();
        let bw = pim_streaming_bandwidth(&d, 8, 32);
        // Row turnaround (tRTP+tRP+tRCD = 46 cycles per 128-cycle row
        // stream) plus refresh puts efficiency in the 0.6..0.8 band.
        assert!(
            bw.efficiency > 0.6 && bw.efficiency < 0.8,
            "efficiency {} outside expected band",
            bw.efficiency
        );
        // Per-bank sustained bandwidth ~15-17 GB/s.
        assert!(bw.per_bank.as_gb_per_sec() > 12.0);
        assert!(bw.per_bank.as_gb_per_sec() < 18.0);
    }

    #[test]
    fn device_aggregate_scales_with_bank_count() {
        let std16 = HbmDevice::hbm3_16gb();
        let fc = HbmDevice::fc_pim_12gb();
        let bw_std = pim_streaming_bandwidth(&std16, 8, 16);
        let bw_fc = pim_streaming_bandwidth(&fc, 6, 16);
        // Same per-bank rate, 96 vs 128 banks → 3:4 aggregate.
        let ratio = bw_fc.device_aggregate.value() / bw_std.device_aggregate.value();
        assert!(
            (ratio - 0.75).abs() < 0.05,
            "FC-PIM/standard aggregate ratio {ratio} should be ~0.75"
        );
    }

    #[test]
    fn external_bandwidth_well_below_pim() {
        let d = HbmDevice::hbm3_16gb();
        let pim = pim_streaming_bandwidth(&d, 8, 16);
        let ext = external_streaming_bandwidth(&d, 8, 16);
        assert!(
            pim.device_aggregate.value() > 2.0 * ext.device_aggregate.value(),
            "near-bank aggregate must dwarf the external bus"
        );
        // External device bandwidth lands in the real HBM3 ballpark.
        let gbs = ext.device_aggregate.as_gb_per_sec();
        assert!(gbs > 350.0 && gbs < 700.0, "external {gbs} GB/s");
    }

    #[test]
    fn random_rows_are_much_slower_than_streaming() {
        let d = HbmDevice::hbm3_16gb();
        let stream = pim_streaming_bandwidth(&d, 1, 16);
        let random = random_row_bandwidth(&d, 256);
        assert!(
            stream.per_bank.value() > 5.0 * random.per_bank.value(),
            "row-buffer locality must matter: stream {} vs random {}",
            stream.per_bank,
            random.per_bank
        );
    }

    #[test]
    fn longer_runs_converge() {
        let d = HbmDevice::hbm3_16gb();
        let short = pim_streaming_bandwidth(&d, 4, 8);
        let long = pim_streaming_bandwidth(&d, 4, 64);
        let rel = (short.per_bank.value() - long.per_bank.value()).abs() / long.per_bank.value();
        assert!(rel < 0.1, "short vs long disagree by {rel}");
    }
}
