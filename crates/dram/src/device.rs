//! Assembled HBM device presets.

use crate::controller::{BusModel, Controller};
use crate::energy::EnergyParams;
use crate::organization::Topology;
use crate::timing::TimingParams;
use papi_types::{Bandwidth, Bytes};
use serde::{Deserialize, Serialize};

/// One HBM3 stack: geometry + timing + energy parameters.
///
/// # Example
///
/// ```
/// use papi_dram::HbmDevice;
///
/// let std16 = HbmDevice::hbm3_16gb();
/// assert!((std16.capacity().as_gib() - 16.0).abs() < 1e-9);
/// let fc = HbmDevice::fc_pim_12gb();
/// assert!((fc.capacity().as_gib() - 12.0).abs() < 1e-9);
/// assert!(fc.topology.total_banks() < std16.topology.total_banks());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmDevice {
    /// Human-readable device name.
    pub name: String,
    /// Bank hierarchy and row/column geometry.
    pub topology: Topology,
    /// Timing constraints.
    pub timing: TimingParams,
    /// Energy parameters.
    pub energy: EnergyParams,
}

impl HbmDevice {
    /// The standard 16 GB / 128-bank HBM3 stack used by the AttAcc (1P1B),
    /// HBM-PIM (1P2B) and Attn-PIM devices in the paper.
    pub fn hbm3_16gb() -> Self {
        Self {
            name: "HBM3-16GB".to_owned(),
            topology: Topology::hbm3_16gb(),
            timing: TimingParams::hbm3(),
            energy: EnergyParams::hbm3(),
        }
    }

    /// The 12 GB / 96-bank FC-PIM die (paper §6.1, Eq. (4)): a quarter of
    /// the banks is traded for the area of 4 FPUs per bank.
    pub fn fc_pim_12gb() -> Self {
        Self {
            name: "FC-PIM-12GB".to_owned(),
            topology: Topology::fc_pim_12gb(),
            timing: TimingParams::hbm3(),
            energy: EnergyParams::hbm3(),
        }
    }

    /// Total capacity of the stack.
    pub fn capacity(&self) -> Bytes {
        self.topology.capacity()
    }

    /// Theoretical per-bank streaming bandwidth (one column access every
    /// `t_ccd`, ignoring row turnaround): ≈ 21.3 GB/s for the HBM3 preset,
    /// matching the paper's per-bank figure.
    pub fn peak_bank_bandwidth(&self) -> Bandwidth {
        let bytes_per_sec = self.topology.column_bytes as f64
            / (self.timing.t_ck.as_secs() * self.timing.t_ccd as f64);
        Bandwidth::new(bytes_per_sec)
    }

    /// Theoretical aggregate near-bank (PIM) streaming bandwidth: all
    /// banks concurrently.
    pub fn peak_pim_bandwidth(&self) -> Bandwidth {
        self.peak_bank_bandwidth() * self.topology.total_banks() as f64
    }

    /// Theoretical external bandwidth (shared data bus, one burst per
    /// `t_bus` per pseudo-channel).
    pub fn peak_external_bandwidth(&self) -> Bandwidth {
        let per_pc = self.topology.column_bytes as f64
            / (self.timing.t_ck.as_secs() * self.timing.t_bus as f64);
        Bandwidth::new(per_pc * self.topology.total_pseudo_channels() as f64)
    }

    /// Builds a cycle-level controller over one pseudo-channel of this
    /// device.
    pub fn pseudo_channel_controller(&self, bus: BusModel) -> Controller {
        Controller::new(
            self.timing.clone(),
            self.topology.banks_per_pseudo_channel(),
            self.topology.column_bytes,
            bus,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bank_bandwidth_matches_paper() {
        let d = HbmDevice::hbm3_16gb();
        // 32 B / 1.5 ns = 21.33 GB/s — the paper's ~20.8 GB/s per bank.
        assert!((d.peak_bank_bandwidth().as_gb_per_sec() - 21.33).abs() < 0.05);
    }

    #[test]
    fn aggregate_pim_bandwidth_dwarfs_external() {
        let d = HbmDevice::hbm3_16gb();
        let pim = d.peak_pim_bandwidth();
        let ext = d.peak_external_bandwidth();
        // 128 banks near-bank vs 16 pseudo-channel buses.
        assert!(pim.value() > 3.0 * ext.value());
        // External peak lands near the HBM3 datasheet (~665 GB/s).
        assert!(ext.as_gb_per_sec() > 600.0 && ext.as_gb_per_sec() < 750.0);
    }

    #[test]
    fn fc_pim_loses_quarter_of_banks_and_capacity() {
        let std16 = HbmDevice::hbm3_16gb();
        let fc = HbmDevice::fc_pim_12gb();
        assert_eq!(
            fc.topology.total_banks() * 4,
            std16.topology.total_banks() * 3
        );
        assert!((fc.capacity().value() * 4.0 - std16.capacity().value() * 3.0).abs() < 1.0);
    }

    #[test]
    fn controller_has_pseudo_channel_banks() {
        let d = HbmDevice::hbm3_16gb();
        let c = d.pseudo_channel_controller(BusModel::PerBankPim);
        assert_eq!(c.bank_count(), d.topology.banks_per_pseudo_channel());
    }
}
