//! Roofline analysis (the paper's Fig. 2 and §5.1 identification step).

use crate::config::ModelConfig;
use crate::kernels::{AttentionShape, FcKernel, Parallelism};
use papi_types::{ArithmeticIntensity, Bandwidth, FlopsRate};
use serde::{Deserialize, Serialize};

/// Whether a kernel sits left or right of a machine's roofline knee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Boundedness {
    /// Left of the knee: limited by memory bandwidth.
    MemoryBound,
    /// Right of the knee: limited by compute throughput.
    ComputeBound,
}

impl Boundedness {
    /// Classifies an arithmetic intensity against a machine's knee.
    pub fn classify(ai: ArithmeticIntensity, peak: FlopsRate, bandwidth: Bandwidth) -> Self {
        let knee = peak / bandwidth;
        if ai.value() < knee.value() {
            Boundedness::MemoryBound
        } else {
            Boundedness::ComputeBound
        }
    }
}

impl core::fmt::Display for Boundedness {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Boundedness::MemoryBound => f.write_str("memory-bound"),
            Boundedness::ComputeBound => f.write_str("compute-bound"),
        }
    }
}

/// One point of a roofline plot (Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel label (`"FC"` or `"Attention"`).
    pub kernel: &'static str,
    /// Batch size (RLP).
    pub batch: u64,
    /// Speculation length (TLP).
    pub speculation: u64,
    /// Arithmetic intensity of the kernel.
    pub ai: f64,
    /// Attainable FLOPs rate on the machine (the roofline height).
    pub attainable_tflops: f64,
    /// Classification against the machine's knee.
    pub boundedness: Boundedness,
}

/// Generates the FC and attention roofline points for one `(batch,
/// speculation)` configuration on a machine with the given `peak` and
/// `bandwidth` (the paper uses a single A100: 312 TFLOPS / 1935 GB/s).
///
/// The FC point aggregates the layer's FC kernels (weights dominate the
/// byte count, so this matches the paper's per-kernel numbers); the
/// attention point uses a 512-token KV context, the paper's motivating
/// sequence regime.
pub fn roofline_points(
    model: &ModelConfig,
    batch: u64,
    speculation: u64,
    kv_len: u64,
    peak: FlopsRate,
    bandwidth: Bandwidth,
) -> Vec<RooflinePoint> {
    let p = Parallelism::new(batch, speculation);
    let kernels = FcKernel::layer_kernels(model);
    let fc_flops: f64 = kernels.iter().map(|k| k.flops(p).value()).sum();
    let fc_bytes: f64 = kernels.iter().map(|k| k.bytes(model, p).value()).sum();
    let fc_ai = ArithmeticIntensity::new(fc_flops / fc_bytes);

    let attn = AttentionShape::uniform(batch, speculation, kv_len);
    let attn_ai = attn.arithmetic_intensity(model);

    [("FC", fc_ai), ("Attention", attn_ai)]
        .into_iter()
        .map(|(kernel, ai)| RooflinePoint {
            kernel,
            batch,
            speculation,
            ai: ai.value(),
            attainable_tflops: peak.value().min(ai.value() * bandwidth.value()) / 1e12,
            boundedness: Boundedness::classify(ai, peak, bandwidth),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;

    fn a100() -> (FlopsRate, Bandwidth) {
        (
            FlopsRate::from_tflops(312.0),
            Bandwidth::from_gb_per_sec(1935.0),
        )
    }

    /// Fig. 2(a): at speculation 8, FC flips from memory- to
    /// compute-bound as the batch grows past ~32; attention never flips.
    #[test]
    fn fig2a_fc_flips_attention_does_not() {
        let model = ModelPreset::Opt30B.config();
        let (peak, bw) = a100();
        for batch in [4u64, 8, 16] {
            let pts = roofline_points(&model, batch, 8, 512, peak, bw);
            let fc = &pts[0];
            if batch <= 8 {
                assert_eq!(
                    fc.boundedness,
                    Boundedness::MemoryBound,
                    "batch {batch} FC should be memory-bound (AI {})",
                    fc.ai
                );
            }
        }
        for batch in [32u64, 64, 128] {
            let pts = roofline_points(&model, batch, 8, 512, peak, bw);
            assert_eq!(
                pts[0].boundedness,
                Boundedness::ComputeBound,
                "batch {batch}"
            );
            assert_eq!(
                pts[1].boundedness,
                Boundedness::MemoryBound,
                "batch {batch}"
            );
        }
    }

    /// Fig. 2(b): at batch 32, FC becomes compute-bound once speculation
    /// exceeds ~6.
    #[test]
    fn fig2b_speculation_flips_fc() {
        let model = ModelPreset::Opt30B.config();
        let (peak, bw) = a100();
        let at = |spec| roofline_points(&model, 32, spec, 512, peak, bw)[0].boundedness;
        assert_eq!(at(2), Boundedness::MemoryBound);
        assert_eq!(at(4), Boundedness::MemoryBound);
        assert_eq!(at(8), Boundedness::ComputeBound);
    }

    #[test]
    fn attainable_tflops_capped_at_peak() {
        let model = ModelPreset::Opt30B.config();
        let (peak, bw) = a100();
        let pts = roofline_points(&model, 512, 8, 512, peak, bw);
        assert!(pts[0].attainable_tflops <= peak.as_tflops() + 1e-9);
    }

    #[test]
    fn boundedness_classify_at_knee() {
        let (peak, bw) = a100();
        let knee = peak / bw;
        assert_eq!(
            Boundedness::classify(ArithmeticIntensity::new(knee.value() - 1.0), peak, bw),
            Boundedness::MemoryBound
        );
        assert_eq!(
            Boundedness::classify(ArithmeticIntensity::new(knee.value() + 1.0), peak, bw),
            Boundedness::ComputeBound
        );
    }

    #[test]
    fn display_strings() {
        assert_eq!(Boundedness::MemoryBound.to_string(), "memory-bound");
        assert_eq!(Boundedness::ComputeBound.to_string(), "compute-bound");
    }
}
