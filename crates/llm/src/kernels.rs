//! Decoder kernel shapes and their FLOP/byte arithmetic.

use crate::config::ModelConfig;
use papi_types::{ArithmeticIntensity, Bytes, Flops};
use serde::{Deserialize, Serialize};

/// The decoding-parallelism state of one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism {
    /// Request-level parallelism (live requests in the batch).
    pub rlp: u64,
    /// Token-level parallelism (speculation length).
    pub tlp: u64,
}

impl Parallelism {
    /// Creates a parallelism state.
    ///
    /// # Panics
    ///
    /// Panics if either level is zero.
    #[track_caller]
    pub fn new(rlp: u64, tlp: u64) -> Self {
        assert!(rlp > 0 && tlp > 0, "parallelism levels must be positive");
        Self { rlp, tlp }
    }

    /// Tokens decoded together this iteration: `RLP × TLP`, the FC
    /// kernel's data-reuse level and the paper's Eq. (2) arithmetic-
    /// intensity estimate.
    pub fn tokens(&self) -> u64 {
        self.rlp * self.tlp
    }
}

/// Which FC kernel of the decoder layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FcKernelKind {
    /// Fused Q, K and V generation (`h → 3h`).
    QkvGeneration,
    /// Attention output projection (`h → h`).
    Projection,
    /// FFN up projection (`h → ffn`).
    FfnUp,
    /// FFN gate projection (`h → ffn`, gated models only).
    FfnGate,
    /// FFN down projection (`ffn → h`).
    FfnDown,
}

/// One FC kernel's weight shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FcKernel {
    /// Which kernel this is.
    pub kind: FcKernelKind,
    /// Output features.
    pub out_features: u64,
    /// Input features.
    pub in_features: u64,
}

impl FcKernel {
    /// The FC kernels of one decoder layer of `model`, in execution
    /// order.
    pub fn layer_kernels(model: &ModelConfig) -> Vec<FcKernel> {
        let h = model.hidden;
        let f = model.ffn_dim;
        let mut kernels = vec![
            FcKernel {
                kind: FcKernelKind::QkvGeneration,
                out_features: 3 * h,
                in_features: h,
            },
            FcKernel {
                kind: FcKernelKind::Projection,
                out_features: h,
                in_features: h,
            },
            FcKernel {
                kind: FcKernelKind::FfnUp,
                out_features: f,
                in_features: h,
            },
        ];
        if model.gated_ffn {
            kernels.push(FcKernel {
                kind: FcKernelKind::FfnGate,
                out_features: f,
                in_features: h,
            });
        }
        kernels.push(FcKernel {
            kind: FcKernelKind::FfnDown,
            out_features: h,
            in_features: f,
        });
        kernels
    }

    /// Weight elements.
    pub fn weights(&self) -> u64 {
        self.out_features * self.in_features
    }

    /// FLOPs for `p.tokens()` activation vectors (2 per MAC).
    pub fn flops(&self, p: Parallelism) -> Flops {
        Flops::new(2.0 * self.weights() as f64 * p.tokens() as f64)
    }

    /// Bytes moved: weights once, plus input and output activations per
    /// token — the denominator of the paper's Eq. (1).
    pub fn bytes(&self, model: &ModelConfig, p: Parallelism) -> Bytes {
        let elems = self.weights() + p.tokens() * self.in_features + p.tokens() * self.out_features;
        elems as f64 * model.dtype.size()
    }

    /// Arithmetic intensity at parallelism `p`.
    pub fn arithmetic_intensity(&self, model: &ModelConfig, p: Parallelism) -> ArithmeticIntensity {
        self.flops(p) / self.bytes(model, p)
    }
}

/// The multi-head attention kernel of one decoder layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttentionShape {
    /// Requests attending (RLP).
    pub requests: u64,
    /// Queries per request (TLP).
    pub queries: u64,
    /// Summed KV length across the batch's requests.
    pub total_kv_len: u64,
}

impl AttentionShape {
    /// Creates an attention shape.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    #[track_caller]
    pub fn new(requests: u64, queries: u64, total_kv_len: u64) -> Self {
        assert!(
            requests > 0 && queries > 0 && total_kv_len > 0,
            "attention shape must be positive"
        );
        Self {
            requests,
            queries,
            total_kv_len,
        }
    }

    /// Uniform-KV constructor: every request has the same cache length.
    pub fn uniform(requests: u64, queries: u64, kv_len: u64) -> Self {
        Self::new(requests, queries, requests * kv_len)
    }

    /// Average KV length per request.
    pub fn mean_kv_len(&self) -> f64 {
        self.total_kv_len as f64 / self.requests as f64
    }

    /// GEMV FLOPs: `Q·Kᵀ` and `P·V`, each `2 × kv × h` per query, summed
    /// over the batch (heads × head_dim = h).
    pub fn flops(&self, model: &ModelConfig) -> Flops {
        Flops::new(4.0 * self.queries as f64 * self.total_kv_len as f64 * model.hidden as f64)
    }

    /// Bytes moved: the K and V caches (the dominant term), plus query
    /// and score/context vectors.
    pub fn bytes(&self, model: &ModelConfig) -> Bytes {
        let kv = 2 * self.total_kv_len * model.hidden;
        let qp = 2 * self.requests * self.queries * model.hidden
            + self.queries * self.total_kv_len * model.heads;
        (kv + qp) as f64 * model.dtype.size()
    }

    /// Arithmetic intensity — ≈ TLP, independent of batch size (the
    /// paper's key attention observation).
    pub fn arithmetic_intensity(&self, model: &ModelConfig) -> ArithmeticIntensity {
        self.flops(model) / self.bytes(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;
    use proptest::prelude::*;

    #[test]
    fn layer_kernels_cover_all_weights() {
        for preset in ModelPreset::ALL {
            let model = preset.config();
            let sum: u64 = FcKernel::layer_kernels(&model)
                .iter()
                .map(FcKernel::weights)
                .sum();
            assert_eq!(sum, model.fc_weights_per_layer(), "{preset}");
        }
    }

    #[test]
    fn gated_models_have_five_fc_kernels() {
        assert_eq!(
            FcKernel::layer_kernels(&ModelPreset::Llama65B.config()).len(),
            5
        );
        assert_eq!(
            FcKernel::layer_kernels(&ModelPreset::Gpt3_175B.config()).len(),
            4
        );
    }

    #[test]
    fn fc_ai_approaches_tokens_for_large_h() {
        // Eq. (2): AI ≈ RLP × TLP when h is large.
        let model = ModelPreset::Gpt3_175B.config();
        let proj = FcKernel {
            kind: FcKernelKind::Projection,
            out_features: model.hidden,
            in_features: model.hidden,
        };
        for tokens in [4u64, 32, 128] {
            let p = Parallelism::new(tokens, 1);
            let ai = proj.arithmetic_intensity(&model, p).value();
            let rel = (ai - tokens as f64).abs() / tokens as f64;
            assert!(rel < 0.05, "AI {ai} vs tokens {tokens}");
        }
    }

    #[test]
    fn fc_ai_matches_eq1_exactly() {
        // Eq. (1) for the square projection kernel.
        let model = ModelPreset::Gpt3_66B.config();
        let h = model.hidden as f64;
        let proj = FcKernel {
            kind: FcKernelKind::Projection,
            out_features: model.hidden,
            in_features: model.hidden,
        };
        let p = Parallelism::new(16, 4);
        let b = p.tokens() as f64;
        let expected = (b * h * h * 2.0) / ((2.0 * b * h + h * h) * 2.0);
        let got = proj.arithmetic_intensity(&model, p).value();
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn attention_ai_tracks_tlp_not_rlp() {
        let model = ModelPreset::Opt30B.config();
        let ai = |rlp, tlp| {
            AttentionShape::uniform(rlp, tlp, 512)
                .arithmetic_intensity(&model)
                .value()
        };
        // Batch-independent.
        assert!((ai(4, 1) - ai(128, 1)).abs() < 0.05);
        // Grows sublinearly-with-TLP towards TLP (score traffic eats in).
        assert!(ai(32, 8) > 5.0 && ai(32, 8) < 8.5);
        assert!(ai(32, 8) > ai(32, 2));
    }

    #[test]
    fn paper_motivating_intensities() {
        // §3.3: batch 4, speculation 8 ⇒ FC AI ≈ 31.7, attention ≈ 7.0.
        let model = ModelPreset::Opt30B.config();
        let p = Parallelism::new(4, 8);
        let proj = FcKernel {
            kind: FcKernelKind::Projection,
            out_features: model.hidden,
            in_features: model.hidden,
        };
        let fc_ai = proj.arithmetic_intensity(&model, p).value();
        assert!((fc_ai - 31.7).abs() < 1.0, "FC AI {fc_ai}, paper: 31.7");
        let attn_ai = AttentionShape::uniform(4, 8, 512)
            .arithmetic_intensity(&model)
            .value();
        assert!(
            (attn_ai - 7.0).abs() < 1.0,
            "attention AI {attn_ai}, paper: 7.0"
        );
    }

    #[test]
    fn uniform_constructor() {
        let s = AttentionShape::uniform(4, 2, 100);
        assert_eq!(s.total_kv_len, 400);
        assert!((s.mean_kv_len() - 100.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_parallelism_rejected() {
        Parallelism::new(0, 1);
    }

    proptest! {
        #[test]
        fn fc_ai_monotone_in_tokens(a in 1u64..256, b in 1u64..256) {
            let model = ModelPreset::Llama65B.config();
            let k = FcKernel { kind: FcKernelKind::Projection, out_features: model.hidden, in_features: model.hidden };
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let ai_lo = k.arithmetic_intensity(&model, Parallelism::new(lo, 1)).value();
            let ai_hi = k.arithmetic_intensity(&model, Parallelism::new(hi, 1)).value();
            prop_assert!(ai_lo <= ai_hi + 1e-9);
        }

        #[test]
        fn fc_ai_below_tokens(tokens in 1u64..512) {
            // Eq. (1) is strictly below the Eq. (2) estimate.
            let model = ModelPreset::Gpt3_66B.config();
            let k = FcKernel { kind: FcKernelKind::Projection, out_features: model.hidden, in_features: model.hidden };
            let ai = k.arithmetic_intensity(&model, Parallelism::new(tokens, 1)).value();
            prop_assert!(ai < tokens as f64);
        }

        #[test]
        fn attention_flops_linear_in_kv(kv in 1u64..10_000) {
            let model = ModelPreset::Llama65B.config();
            let s1 = AttentionShape::uniform(2, 2, kv);
            let s2 = AttentionShape::uniform(2, 2, 2 * kv);
            prop_assert!((s2.flops(&model).value() / s1.flops(&model).value() - 2.0).abs() < 1e-9);
        }
    }
}
