//! KV-cache capacity arithmetic (the paper's §3.2 memory-capacity
//! limits on initial RLP).

use crate::config::ModelConfig;
use papi_types::Bytes;
use serde::{Deserialize, Serialize};

/// KV-cache capacity planner for a given model on a given memory pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCachePlanner {
    kv_bytes_per_token: Bytes,
    weight_bytes: Bytes,
}

impl KvCachePlanner {
    /// Builds a planner for `model`.
    pub fn new(model: &ModelConfig) -> Self {
        Self {
            kv_bytes_per_token: model.kv_bytes_per_token(),
            weight_bytes: model.weight_bytes(),
        }
    }

    /// KV bytes required by one request whose total sequence (input +
    /// output) reaches `seq_len` tokens.
    pub fn request_bytes(&self, seq_len: u64) -> Bytes {
        self.kv_bytes_per_token * seq_len as f64
    }

    /// KV bytes for a whole batch at a uniform sequence length.
    pub fn batch_bytes(&self, requests: u64, seq_len: u64) -> Bytes {
        self.request_bytes(seq_len) * requests as f64
    }

    /// How many requests of `seq_len` tokens fit in `memory`, after
    /// reserving space for the model weights when `reserve_weights` is
    /// set (the paper's §3.2 examples reserve them).
    pub fn max_requests(&self, memory: Bytes, seq_len: u64, reserve_weights: bool) -> u64 {
        let reserved = if reserve_weights {
            self.weight_bytes.value()
        } else {
            0.0
        };
        let available = (memory.value() - reserved).max(0.0);
        (available / self.request_bytes(seq_len).value()).floor() as u64
    }

    /// The largest batch the memory admits — the §3.2 "Memory Capacity
    /// Limits" bound on initial RLP.
    pub fn max_initial_rlp(&self, memory: Bytes, input_len: u64, output_len: u64) -> u64 {
        self.max_requests(memory, input_len + output_len, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;
    use proptest::prelude::*;

    /// §3.2: "A computing system with 640 GB HBM can house 282 requests
    /// with input and output lengths of 128, but only 18 requests with
    /// input and output lengths of 2048." Our accounting (weights
    /// reserved, 4.72 MB/token) lands in the same decade: a few hundred
    /// short requests, a couple dozen long ones.
    #[test]
    fn paper_memory_capacity_examples() {
        let planner = KvCachePlanner::new(&ModelPreset::Gpt3_175B.config());
        let memory = Bytes::new(640e9);
        let short = planner.max_initial_rlp(memory, 128, 128);
        let long = planner.max_initial_rlp(memory, 2048, 2048);
        assert!(
            short > 200 && short < 350,
            "short-sequence capacity {short}"
        );
        assert!(long > 10 && long < 30, "long-sequence capacity {long}");
        assert!(short / long >= 10);
    }

    #[test]
    fn weights_reservation_matters() {
        let planner = KvCachePlanner::new(&ModelPreset::Gpt3_175B.config());
        let memory = Bytes::new(640e9);
        let with = planner.max_requests(memory, 4096, true);
        let without = planner.max_requests(memory, 4096, false);
        assert!(without > with);
    }

    #[test]
    fn zero_when_weights_do_not_fit() {
        let planner = KvCachePlanner::new(&ModelPreset::Gpt3_175B.config());
        assert_eq!(planner.max_requests(Bytes::new(100e9), 128, true), 0);
    }

    #[test]
    fn batch_bytes_scale() {
        let planner = KvCachePlanner::new(&ModelPreset::Llama65B.config());
        let one = planner.request_bytes(256);
        let batch = planner.batch_bytes(16, 256);
        assert!((batch.value() - 16.0 * one.value()).abs() < 1.0);
    }

    proptest! {
        #[test]
        fn longer_sequences_fit_fewer_requests(a in 1u64..4096, b in 1u64..4096) {
            let planner = KvCachePlanner::new(&ModelPreset::Gpt3_66B.config());
            let memory = Bytes::new(640e9);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                planner.max_requests(memory, lo, true) >= planner.max_requests(memory, hi, true)
            );
        }

        #[test]
        fn capacity_times_request_fits(seq in 1u64..8192) {
            let planner = KvCachePlanner::new(&ModelPreset::Llama65B.config());
            let memory = Bytes::new(512e9);
            let n = planner.max_requests(memory, seq, true);
            let used = planner.batch_bytes(n, seq).value()
                + ModelPreset::Llama65B.config().weight_bytes().value();
            prop_assert!(used <= memory.value() * (1.0 + 1e-9));
        }
    }
}
