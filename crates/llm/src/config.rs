//! Model configurations and the paper's evaluated presets.

use papi_types::{Bytes, DataType};
use serde::{Deserialize, Serialize};

/// Architecture of one decoder-only transformer.
///
/// # Example
///
/// ```
/// use papi_llm::ModelPreset;
///
/// let gpt3 = ModelPreset::Gpt3_175B.config();
/// assert_eq!(gpt3.hidden, 12288);
/// // ~350 GB of FP16 weights (paper §7.1).
/// let gb = gpt3.weight_bytes().value() / 1e9;
/// assert!(gb > 330.0 && gb < 370.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name.
    pub name: String,
    /// Decoder layers.
    pub layers: u64,
    /// Hidden dimension `h`.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Feed-forward inner dimension.
    pub ffn_dim: u64,
    /// Whether the FFN is gated (SwiGLU-style, three matrices) as in
    /// LLaMA, or classic two-matrix GELU as in GPT/OPT.
    pub gated_ffn: bool,
    /// Weight/activation element type.
    pub dtype: DataType,
}

impl ModelConfig {
    /// Per-head dimension (`hidden / heads`).
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `hidden`.
    #[track_caller]
    pub fn head_dim(&self) -> u64 {
        assert!(
            self.hidden.is_multiple_of(self.heads),
            "heads must divide hidden dimension"
        );
        self.hidden / self.heads
    }

    /// FC weight *elements* in one decoder layer: QKV (3h²), the output
    /// projection (h²), and the FFN (2 or 3 `h × ffn` matrices).
    pub fn fc_weights_per_layer(&self) -> u64 {
        let attn = 4 * self.hidden * self.hidden;
        let ffn_matrices = if self.gated_ffn { 3 } else { 2 };
        attn + ffn_matrices * self.hidden * self.ffn_dim
    }

    /// FC weight elements across all layers.
    pub fn total_fc_weights(&self) -> u64 {
        self.layers * self.fc_weights_per_layer()
    }

    /// Total parameter count (FC weights; embeddings excluded, as in the
    /// paper's kernel-level accounting).
    pub fn parameters(&self) -> u64 {
        self.total_fc_weights()
    }

    /// Bytes of model weights at the configured dtype.
    pub fn weight_bytes(&self) -> Bytes {
        self.total_fc_weights() as f64 * self.dtype.size()
    }

    /// KV-cache bytes appended per token per request (K and V across all
    /// layers).
    pub fn kv_bytes_per_token(&self) -> Bytes {
        (2 * self.layers * self.hidden) as f64 * self.dtype.size()
    }
}

/// The models the paper evaluates, plus OPT-30B from the motivation
/// study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelPreset {
    /// OPT-30B (Fig. 2 roofline study).
    Opt30B,
    /// LLaMA-65B (gated FFN).
    Llama65B,
    /// GPT-3 66B-class (OPT-66B geometry).
    Gpt3_66B,
    /// GPT-3 175B (h = 12288, §5.1).
    Gpt3_175B,
}

impl ModelPreset {
    /// All presets, in the paper's evaluation order.
    pub const ALL: [ModelPreset; 4] = [
        ModelPreset::Opt30B,
        ModelPreset::Llama65B,
        ModelPreset::Gpt3_66B,
        ModelPreset::Gpt3_175B,
    ];

    /// The three end-to-end evaluation models of Fig. 8.
    pub const EVALUATED: [ModelPreset; 3] = [
        ModelPreset::Llama65B,
        ModelPreset::Gpt3_66B,
        ModelPreset::Gpt3_175B,
    ];

    /// Materializes the architecture.
    pub fn config(self) -> ModelConfig {
        match self {
            ModelPreset::Opt30B => ModelConfig {
                name: "OPT-30B".to_owned(),
                layers: 48,
                hidden: 7168,
                heads: 56,
                ffn_dim: 4 * 7168,
                gated_ffn: false,
                dtype: DataType::Fp16,
            },
            ModelPreset::Llama65B => ModelConfig {
                name: "LLaMA-65B".to_owned(),
                layers: 80,
                hidden: 8192,
                heads: 64,
                ffn_dim: 22016,
                gated_ffn: true,
                dtype: DataType::Fp16,
            },
            ModelPreset::Gpt3_66B => ModelConfig {
                name: "GPT-3 66B".to_owned(),
                layers: 64,
                hidden: 9216,
                heads: 72,
                ffn_dim: 4 * 9216,
                gated_ffn: false,
                dtype: DataType::Fp16,
            },
            ModelPreset::Gpt3_175B => ModelConfig {
                name: "GPT-3 175B".to_owned(),
                layers: 96,
                hidden: 12288,
                heads: 96,
                ffn_dim: 4 * 12288,
                gated_ffn: false,
                dtype: DataType::Fp16,
            },
        }
    }
}

impl core::fmt::Display for ModelPreset {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.config().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_model_names() {
        let check = |preset: ModelPreset, billions: f64, tolerance: f64| {
            let p = preset.config().parameters() as f64 / 1e9;
            assert!(
                (p - billions).abs() < tolerance,
                "{preset}: {p} B params, expected ~{billions} B"
            );
        };
        check(ModelPreset::Opt30B, 30.0, 2.0);
        check(ModelPreset::Llama65B, 64.5, 2.0);
        check(ModelPreset::Gpt3_66B, 64.5, 3.0);
        check(ModelPreset::Gpt3_175B, 173.9, 4.0);
    }

    #[test]
    fn gpt3_needs_350gb_as_in_paper() {
        let bytes = ModelPreset::Gpt3_175B.config().weight_bytes();
        assert!(bytes.value() / 1e9 > 330.0 && bytes.value() / 1e9 < 370.0);
    }

    #[test]
    fn head_dims_are_exact() {
        for preset in ModelPreset::ALL {
            let c = preset.config();
            assert_eq!(c.head_dim() * c.heads, c.hidden, "{preset}");
        }
    }

    #[test]
    fn llama_ffn_is_gated() {
        assert!(ModelPreset::Llama65B.config().gated_ffn);
        assert!(!ModelPreset::Gpt3_175B.config().gated_ffn);
    }

    #[test]
    fn kv_bytes_per_token_gpt3_175b() {
        // 2 × 96 layers × 12288 × 2 B = 4.72 MB/token — the number behind
        // the paper's §3.2 memory-capacity argument.
        let kv = ModelPreset::Gpt3_175B.config().kv_bytes_per_token();
        assert!((kv.as_mib() - 4.5).abs() < 0.2);
    }

    #[test]
    fn evaluated_is_subset_of_all() {
        for m in ModelPreset::EVALUATED {
            assert!(ModelPreset::ALL.contains(&m));
        }
    }
}
