//! `papi-llm` — analytical transformer kernel model.
//!
//! The PAPI paper reasons about LLM decoding at the granularity of two
//! kernel families per decoder layer (Fig. 1(a)):
//!
//! - **FC kernels** — QKV generation, attention output projection, and
//!   the feed-forward network: weight-stationary GEMVs whose data reuse
//!   grows with `RLP × TLP` (batch × speculation length);
//! - **the multi-head attention kernel** — per-request KV-cache
//!   streaming whose reuse grows only with `TLP`.
//!
//! This crate provides the FLOP/byte arithmetic for both families
//! ([`kernels`]), the roofline and arithmetic-intensity analysis behind
//! the paper's Fig. 2 and Eq. (1)/(2) ([`roofline`]), KV-cache capacity
//! math ([`kvcache`]), and the model presets the paper evaluates
//! ([`config`]): OPT-30B, LLaMA-65B, GPT-3 66B and GPT-3 175B.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod kernels;
pub mod kvcache;
pub mod moe;
pub mod roofline;

pub use config::{ModelConfig, ModelPreset};
pub use kernels::{AttentionShape, FcKernel, FcKernelKind, Parallelism};
pub use roofline::{Boundedness, RooflinePoint};
