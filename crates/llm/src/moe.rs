//! Mixture-of-Experts models (paper §6.5, "Deployment of Emerging LLM
//! Models").
//!
//! The paper argues FC-PIM is "particularly well-suited to exploit the
//! sparsity inherent in MoE architectures": each token activates only
//! `top_k` of `experts` FFN experts, so (1) only a fraction of the FFN
//! weights is touched per iteration, and (2) the *per-expert* data-reuse
//! level is `tokens × top_k / distinct_experts` — lower than a dense
//! model's, which is exactly the regime where FC-PIM beats a GPU. This
//! module provides the routing/weight/reuse arithmetic; the executors in
//! `papi-pim` price the resulting GEMVs unchanged.

use crate::config::ModelConfig;
use papi_types::{Bytes, DataType};
use serde::{Deserialize, Serialize};

/// A decoder-only transformer whose FFN is a mixture of experts.
///
/// # Example
///
/// ```
/// use papi_llm::moe::MoeModel;
///
/// let m = MoeModel::mixtral_like();
/// // 8 experts, 2 active: at large batch the FFN touches every expert,
/// // but per-expert reuse is only a quarter of the dense model's.
/// assert!((m.expected_distinct_experts(256) - 8.0).abs() < 0.01);
/// assert!((m.effective_ffn_reuse(256) - 64.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoeModel {
    /// Attention/backbone geometry (its `ffn_dim` describes one expert).
    pub base: ModelConfig,
    /// Experts per FFN layer.
    pub experts: u64,
    /// Experts each token routes to.
    pub top_k: u64,
}

impl MoeModel {
    /// Builds an MoE model.
    ///
    /// # Panics
    ///
    /// Panics if `top_k` is zero or exceeds `experts`.
    #[track_caller]
    pub fn new(base: ModelConfig, experts: u64, top_k: u64) -> Self {
        assert!(
            top_k > 0 && top_k <= experts,
            "top_k must be in 1..=experts"
        );
        Self {
            base,
            experts,
            top_k,
        }
    }

    /// A Mixtral-8x22B-class preset: 56 layers, h = 6144, 8 experts,
    /// top-2 routing (~140 B total parameters, ~39 B active).
    pub fn mixtral_like() -> Self {
        Self::new(
            ModelConfig {
                name: "MoE-8x22B".to_owned(),
                layers: 56,
                hidden: 6144,
                heads: 48,
                ffn_dim: 16384,
                gated_ffn: true,
                dtype: DataType::Fp16,
            },
            8,
            2,
        )
    }

    /// Weight elements of one expert's FFN.
    pub fn expert_weights(&self) -> u64 {
        let matrices = if self.base.gated_ffn { 3 } else { 2 };
        matrices * self.base.hidden * self.base.ffn_dim
    }

    /// Dense (attention-side) FC weight elements per layer: QKV + output
    /// projection, shared by every token.
    pub fn dense_weights_per_layer(&self) -> u64 {
        4 * self.base.hidden * self.base.hidden
    }

    /// Total parameters across all experts and layers.
    pub fn total_parameters(&self) -> u64 {
        self.base.layers * (self.dense_weights_per_layer() + self.experts * self.expert_weights())
    }

    /// Parameters active for a single token (dense + `top_k` experts).
    pub fn active_parameters(&self) -> u64 {
        self.base.layers * (self.dense_weights_per_layer() + self.top_k * self.expert_weights())
    }

    /// Memory footprint of all weights.
    pub fn weight_bytes(&self) -> Bytes {
        self.total_parameters() as f64 * self.base.dtype.size()
    }

    /// Expected number of *distinct* experts hit when `tokens` tokens
    /// each route to `top_k` experts uniformly:
    /// `E (1 - (1 - k/E)^tokens)`.
    pub fn expected_distinct_experts(&self, tokens: u64) -> f64 {
        let e = self.experts as f64;
        let k = self.top_k as f64;
        e * (1.0 - (1.0 - k / e).powi(tokens as i32))
    }

    /// The per-expert data-reuse level the FFN GEMVs see at `tokens`
    /// tokens in flight: total expert activations over distinct experts
    /// fetched, `tokens × top_k / distinct`.
    pub fn effective_ffn_reuse(&self, tokens: u64) -> f64 {
        let distinct = self.expected_distinct_experts(tokens).max(1e-12);
        tokens as f64 * self.top_k as f64 / distinct
    }

    /// FFN weight bytes fetched per layer at `tokens` tokens (only the
    /// distinct experts' weights stream from DRAM).
    pub fn ffn_fetch_bytes_per_layer(&self, tokens: u64) -> Bytes {
        self.expected_distinct_experts(tokens)
            * self.expert_weights() as f64
            * self.base.dtype.size()
    }

    /// The dense model an MoE replaces for quality comparisons: same
    /// backbone with every expert fused into one giant FFN.
    pub fn dense_equivalent(&self) -> ModelConfig {
        ModelConfig {
            name: format!("{}-dense-equivalent", self.base.name),
            ffn_dim: self.base.ffn_dim * self.experts,
            ..self.base.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mixtral_like_parameter_counts() {
        let m = MoeModel::mixtral_like();
        let total = m.total_parameters() as f64 / 1e9;
        let active = m.active_parameters() as f64 / 1e9;
        assert!(total > 130.0 && total < 150.0, "total {total} B");
        assert!(active > 35.0 && active < 45.0, "active {active} B");
    }

    #[test]
    fn one_token_touches_top_k_experts() {
        let m = MoeModel::mixtral_like();
        assert!((m.expected_distinct_experts(1) - 2.0).abs() < 1e-9);
        assert!((m.effective_ffn_reuse(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_batches_touch_everything_but_dilute_reuse() {
        let m = MoeModel::mixtral_like();
        let tokens = 256;
        assert!((m.expected_distinct_experts(tokens) - 8.0).abs() < 0.01);
        let moe_reuse = m.effective_ffn_reuse(tokens);
        // Dense reuse would be `tokens`; MoE gets k/E of it.
        assert!((moe_reuse - tokens as f64 * 2.0 / 8.0).abs() < 0.5);
    }

    #[test]
    fn fetch_bytes_bounded_by_all_experts() {
        let m = MoeModel::mixtral_like();
        let all = m.experts as f64 * m.expert_weights() as f64 * 2.0;
        for tokens in [1u64, 4, 16, 64, 1024] {
            let fetched = m.ffn_fetch_bytes_per_layer(tokens).value();
            assert!(fetched <= all * (1.0 + 1e-9));
        }
    }

    #[test]
    fn dense_equivalent_has_fused_ffn() {
        let m = MoeModel::mixtral_like();
        let dense = m.dense_equivalent();
        assert_eq!(dense.ffn_dim, m.base.ffn_dim * m.experts);
        // The dense equivalent's per-layer FFN weights equal all experts.
        let dense_ffn = 3 * dense.hidden * dense.ffn_dim;
        assert_eq!(dense_ffn, m.experts * m.expert_weights());
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn top_k_above_experts_rejected() {
        MoeModel::new(MoeModel::mixtral_like().base, 4, 5);
    }

    proptest! {
        #[test]
        fn distinct_experts_monotone_in_tokens(a in 1u64..512, b in 1u64..512) {
            let m = MoeModel::mixtral_like();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                m.expected_distinct_experts(lo) <= m.expected_distinct_experts(hi) + 1e-9
            );
        }

        #[test]
        fn reuse_never_exceeds_dense(tokens in 1u64..512) {
            let m = MoeModel::mixtral_like();
            prop_assert!(m.effective_ffn_reuse(tokens) <= tokens as f64 + 1e-9);
        }

        #[test]
        fn active_at_most_total(experts in 2u64..64, k in 1u64..4) {
            prop_assume!(k <= experts);
            let m = MoeModel::new(MoeModel::mixtral_like().base, experts, k);
            prop_assert!(m.active_parameters() <= m.total_parameters());
            // Strictly sparse whenever routing is actually selective.
            if k < experts {
                prop_assert!(m.active_parameters() < m.total_parameters());
            }
        }
    }
}
