//! # PAPI — PArallel Decoding with PIM
//!
//! A comprehensive Rust reproduction of *"PAPI: Exploiting Dynamic
//! Parallelism in Large Language Model Decoding with a
//! Processing-In-Memory-Enabled Computing System"* (ASPLOS 2025).
//!
//! This crate is a facade that re-exports the whole workspace:
//!
//! - [`types`] — quantity newtypes (time, energy, bandwidth, FLOPs, …)
//! - [`dram`] — cycle-level HBM3 timing model and memory controller
//! - [`pim`] — near-bank PIM compute units (FC-PIM, Attn-PIM, AttAcc, HBM-PIM)
//! - [`gpu`] — roofline model of computation-centric accelerators (A100)
//! - [`interconnect`] — NVLink / PCIe / CXL link models
//! - [`llm`] — transformer kernel FLOP/byte math and model presets
//! - [`kv`] — paged KV cache: refcounted block pool, prefix sharing
//! - [`workload`] — serving workloads: datasets, batching, speculative decoding
//! - [`sched`] — the PAPI dynamic scheduler and static baselines
//! - [`core`] — the heterogeneous system simulator and paper experiments
//!
//! `docs/ARCHITECTURE.md` in the repository maps the whole workspace:
//! the dependency graph over these crates (plus `papi-perf` and
//! `papi-bench`, which this facade does not re-export), the pluggable
//! trait seams, and the life of a request through the serving stack.
//!
//! # Quickstart
//!
//! ```
//! use papi::core::{DecodingSimulator, SystemConfig};
//! use papi::llm::ModelPreset;
//! use papi::workload::{DatasetKind, WorkloadSpec};
//!
//! let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 16, 1)
//!     .with_seed(7)
//!     .with_max_iterations(64);
//! let papi = DecodingSimulator::new(
//!     SystemConfig::papi(ModelPreset::Llama65B.config()),
//! );
//! let report = papi.run(&workload);
//! assert!(report.total_latency().as_secs() > 0.0);
//! ```

pub use papi_core as core;
pub use papi_dram as dram;
pub use papi_gpu as gpu;
pub use papi_interconnect as interconnect;
pub use papi_kv as kv;
pub use papi_llm as llm;
pub use papi_pim as pim;
pub use papi_sched as sched;
pub use papi_types as types;
pub use papi_workload as workload;
