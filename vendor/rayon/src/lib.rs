//! Vendored offline subset of the `rayon` API.
//!
//! Implements the `par_iter().map(f).collect()` shape this workspace
//! uses on top of `std::thread::scope`: the items are split into one
//! contiguous chunk per available core, each chunk is mapped on its own
//! OS thread, and the results are reassembled in input order — so a
//! parallel map is a drop-in, deterministic replacement for the serial
//! one. This is not work-stealing and has no splitting heuristics; for
//! the workspace's coarse-grained design-space sweeps (each item is a
//! whole simulator run) a static partition is the right tool anyway.

use std::num::NonZeroUsize;
use std::sync::{Mutex, OnceLock};

/// The rayon-style glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Types whose references yield parallel iterators (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator over `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

/// A minimal parallel iterator: `map` then `collect`.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Drains the iterator into a vector of its items, in order.
    fn drain(self) -> Vec<Self::Item>;

    /// Maps every element through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { inner: self, f }
    }

    /// Maps every element to a serial iterator in parallel and chains
    /// the results in input order (rayon's `flat_map_iter`).
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        FlatMapIter { inner: self, f }
    }

    /// Executes the pipeline and collects the results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drain().into_iter().collect()
    }
}

/// A by-value parallel iterator over buffered items.
#[derive(Debug)]
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn drain(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        IntoParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

/// The result of [`ParallelIterator::map`].
#[derive(Debug)]
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn drain(self) -> Vec<R> {
        parallel_map(self.inner.drain(), &self.f)
    }
}

/// The result of [`ParallelIterator::flat_map_iter`].
#[derive(Debug)]
pub struct FlatMapIter<I, F> {
    inner: I,
    f: F,
}

impl<I, U, F> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U::Item;

    fn drain(self) -> Vec<U::Item> {
        let f = &self.f;
        parallel_map(self.inner.drain(), &|item| {
            f(item).into_iter().collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Maps `items` through `f` on up to `available_parallelism` threads,
/// preserving input order.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let threads = thread_budget().min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
    let mut start = 0;
    let mut remaining = items;
    while !remaining.is_empty() {
        let rest = remaining.split_off(chunk_len.min(remaining.len()));
        let chunk = std::mem::replace(&mut remaining, rest);
        let len = chunk.len();
        chunks.push((start, chunk));
        start += len;
    }

    let gathered: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks.len()));
    std::thread::scope(|scope| {
        for (offset, chunk) in chunks {
            let gathered = &gathered;
            scope.spawn(move || {
                let mapped: Vec<R> = chunk.into_iter().map(f).collect();
                gathered
                    .lock()
                    .expect("parallel_map worker panicked")
                    .push((offset, mapped));
            });
        }
    });

    let mut parts = gathered.into_inner().expect("parallel_map worker panicked");
    parts.sort_by_key(|(offset, _)| *offset);
    parts.into_iter().flat_map(|(_, part)| part).collect()
}

/// Worker budget, resolved once: `available_parallelism` costs a
/// syscall, and fine-grained callers invoke `parallel_map` thousands of
/// times per run.
fn thread_budget() -> usize {
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_consumes() {
        let input: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u64> = vec![7u64].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn arrays_par_iter() {
        let arr = [1u64, 2, 3, 4];
        let sq: Vec<u64> = arr.par_iter().map(|&x| x * x).collect();
        assert_eq!(sq, vec![1, 4, 9, 16]);
    }

    #[test]
    fn flat_map_iter_preserves_order() {
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = input.par_iter().flat_map_iter(|&x| [x, x + 1000]).collect();
        let expected: Vec<u64> = (0..100).flat_map(|x| [x, x + 1000]).collect();
        assert_eq!(out, expected);
    }
}
