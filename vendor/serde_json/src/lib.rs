//! Vendored offline JSON support for the `serde` subset.
//!
//! Provides `to_string`/`from_str` over [`serde::Value`]. Numbers are
//! written with Rust's shortest-round-trip float formatting, so
//! `to_string` → `from_str` reproduces every finite value exactly.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::msg("cannot serialize non-finite float"));
            }
            let formatted = v.to_string();
            out.push_str(&formatted);
            // Keep floats floats across a round trip: `1.0` prints as
            // `1`, which would otherwise come back as an integer. The
            // value model tolerates either, so this is cosmetic but
            // keeps the output self-describing.
            if !formatted.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected JSON at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::msg("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,4.5]]");
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
        assert_eq!(to_string(&Option::<u64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
