//! Vendored offline subset of the `proptest` API.
//!
//! Supports the property-test shapes this workspace writes: the
//! `proptest!` macro over functions whose arguments are drawn from
//! range strategies, `proptest::collection::vec`, `proptest::bool::ANY`,
//! tuple strategies, an optional `#![proptest_config(...)]` case-count
//! override, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros. Inputs are sampled uniformly from a deterministic generator;
//! there is no shrinking — a failing case panics with the sampled
//! values visible in the assertion message.

/// Strategy trait and range/tuple implementations.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let sampled = self.start + unit * (self.end - self.start);
            sampled.min(self.end - self.end.abs() * f64::EPSILON)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span.max(1)) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean, equiprobably.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Case-count configuration, set via `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real proptest default is 256; 64 keeps the heavier
            // simulator properties fast while still sweeping the space.
            Self { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator for drawing test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator every property run uses.
        #[allow(clippy::new_without_default)]
        pub fn deterministic() -> Self {
            Self {
                state: 0x70_72_6f_70_74_65_73_74, // "proptest"
            }
        }

        /// Next raw word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// The glob import every property module uses.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each function runs its body over sampled
/// inputs (`arg in strategy` bindings).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Property assertion (panics with the failing condition, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::core::assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::core::assert_eq!($($args)*) };
}

/// Skips the current sampled case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, f in 0.5..1.5f64) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(0u8..5, 1..16)) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn tuples_and_assume(pair in (1u32..4, crate::bool::ANY), n in 0u64..100) {
            prop_assume!(n >= 50);
            prop_assert!(n >= 50);
            let (small, _flag) = pair;
            prop_assert!((1..4).contains(&small));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_override_compiles(x in 0u64..3) {
            prop_assert!(x < 3);
        }
    }
}
