//! Vendored offline `Serialize`/`Deserialize` derive macros.
//!
//! Implemented directly on `proc_macro::TokenTree` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the item shapes
//! this workspace derives on: non-generic named-field structs, tuple
//! structs (newtypes serialize transparently, wider tuples as arrays),
//! unit structs, and enums whose variants are unit, named-field, or
//! tuple shaped (externally tagged, as in real serde). `#[serde(...)]`
//! attributes are accepted and ignored — the only one the workspace
//! uses is `transparent` on newtypes, which is this subset's default
//! newtype behaviour anyway.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    let name = item_name(&item);
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    let name = item_name(&item);
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(\n\
                 value: &::serde::Value,\n\
             ) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive generated invalid Deserialize impl")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    }
}

// --- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes_and_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored subset");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: unexpected enum body {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attributes_and_visibility(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next(); // pub(crate) and friends
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body (struct or enum variant).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(ident)) => fields.push(ident.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:`, got {other:?}"),
        }
        // Consume the type: everything until a comma outside angle
        // brackets (grouped tokens are single trees, so only `<`/`>`
        // need explicit depth tracking).
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Number of fields in a tuple body: non-empty top-level comma segments.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut segment_has_tokens = false;
    let mut angle_depth = 0i32;
    for token in body {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += usize::from(segment_has_tokens);
                segment_has_tokens = false;
            }
            _ => segment_has_tokens = true,
        }
    }
    count + usize::from(segment_has_tokens)
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                tokens.next();
                Fields::Tuple(count_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        for token in tokens.by_ref() {
            if matches!(&token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// --- code generation -------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_owned(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let _ = name;
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
    }
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "let _ = value; ::core::result::Result::Ok(Self)".to_owned(),
        Fields::Tuple(1) => {
            "::core::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))".to_owned()
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__element(value, \"{name}\", {i})?"))
                .collect();
            format!("::core::result::Result::Ok(Self({}))", items.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::__field(value, \"{name}\", \"{f}\")?"))
                .collect();
            format!(
                "::core::result::Result::Ok(Self {{ {} }})",
                entries.join(", ")
            )
        }
    }
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|variant| {
            let v = &variant.name;
            match &variant.fields {
                Fields::Unit => format!(
                    "Self::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                ),
                Fields::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let inner = if *n == 1 {
                        "::serde::Serialize::to_value(__f0)".to_owned()
                    } else {
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "Self::{v}({binds}) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), {inner})]),",
                        binds = binders.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "Self::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                         ::serde::Value::Object(::std::vec![{inner}]))]),",
                        binds = fields.join(", "),
                        inner = entries.join(", ")
                    )
                }
            }
        })
        .collect();
    let _ = name;
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            format!(
                "\"{v}\" => ::core::result::Result::Ok(Self::{v}),",
                v = v.name
            )
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|variant| {
            let v = &variant.name;
            match &variant.fields {
                Fields::Unit => unreachable!(),
                Fields::Tuple(1) => format!(
                    "\"{v}\" => ::core::result::Result::Ok(\
                     Self::{v}(::serde::Deserialize::from_value(__inner)?)),"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::__element(__inner, \"{name}::{v}\", {i})?"))
                        .collect();
                    format!(
                        "\"{v}\" => ::core::result::Result::Ok(Self::{v}({})),",
                        items.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::__field(__inner, \"{name}::{v}\", \"{f}\")?")
                        })
                        .collect();
                    format!(
                        "\"{v}\" => ::core::result::Result::Ok(Self::{v} {{ {} }}),",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "match value {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::core::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"{name}: unknown variant `{{}}`\", __other))),\n\
             }},\n\
             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                     {data_arms}\n\
                     __other => ::core::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: unknown variant `{{}}`\", __other))),\n\
                 }}\n\
             }}\n\
             _ => ::core::result::Result::Err(::serde::Error::msg(\
                 \"{name}: expected externally tagged enum\")),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        data_arms = data_arms.join("\n"),
    )
}
