//! Vendored offline subset of the `rand` API.
//!
//! Provides exactly what this workspace uses: `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and the `Rng` methods `gen_range` (over `f64`/integer
//! ranges), `gen_bool`, and `next_u64`. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically strong for simulation
//! purposes and fully deterministic per seed. Streams differ from the
//! real `rand` crate's ChaCha-based `StdRng`, which is fine here: the
//! workspace only relies on determinism and distribution quality, never
//! on specific draws.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[track_caller]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[track_caller]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types seedable from a single `u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A `u64` mapped to the unit interval `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;

    #[track_caller]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end - self.start;
        let sampled = self.start + unit_f64(rng.next_u64()) * span;
        // Guard the half-open upper bound against rounding.
        if sampled >= self.end {
            self.start.max(self.end - self.end.abs() * f64::EPSILON)
        } else {
            sampled
        }
    }
}

macro_rules! sample_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;

            #[track_caller]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is ≤ span/2⁶⁴ — irrelevant at the spans
                // simulation code draws from.
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

sample_int_range!(u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let series_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let series_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let series_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(series_a, series_b);
        assert_ne!(series_a, series_c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let n = rng.gen_range(10u64..20);
            assert!((10..20).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(samples.iter().any(|&s| s < 0.01));
        assert!(samples.iter().any(|&s| s > 0.99));
    }
}
