//! Vendored offline subset of the `criterion` API.
//!
//! Implements `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros with a simple two-phase
//! timer: a short calibration pass sizes the batch, then a fixed number
//! of timed batches report the median per-iteration time. No warmup
//! modeling, outlier analysis, or HTML reports — `cargo bench` prints
//! one line per benchmark.

use std::time::{Duration, Instant};

/// Per-benchmark driver handed to the closure given to
/// [`Criterion::bench_function`].
#[derive(Debug, Default)]
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it `batch` times per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// Benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    /// Timed samples per benchmark.
    sample_count: u32,
    /// Wall-clock budget a single benchmark aims for.
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_count: 20,
            target_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration: one iteration at a time until we know the cost.
        let mut calibration = Bencher {
            batch: 1,
            samples: Vec::new(),
        };
        f(&mut calibration);
        let per_iter = calibration
            .samples
            .first()
            .copied()
            .unwrap_or(Duration::from_nanos(1))
            .max(Duration::from_nanos(1));
        let per_sample = self.target_time.as_nanos() / u128::from(self.sample_count);
        let batch = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut bencher = Bencher {
            batch,
            samples: Vec::new(),
        };
        for _ in 0..self.sample_count {
            f(&mut bencher);
        }
        let mut per_iter_ns: Vec<f64> = bencher
            .samples
            .iter()
            .map(|s| s.as_nanos() as f64 / batch as f64)
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        println!(
            "{name:<48} {median:>14.1} ns/iter  (batch {batch}, {} samples)",
            { self.sample_count }
        );
        self
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
