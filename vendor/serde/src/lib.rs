//! Vendored offline subset of the `serde` API.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the tiny slice of serde it actually uses: a
//! JSON-shaped value model, `Serialize`/`Deserialize` traits defined
//! over that model, and derive macros (re-exported from
//! `serde_derive`) that generate the obvious field-by-field
//! implementations. The external representation matches serde's
//! defaults closely enough for round-tripping within this workspace:
//! structs become objects, newtype structs are transparent, enums are
//! externally tagged.
//!
//! This is *not* a general serde replacement — only what `papi` needs.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A dynamically typed serialization value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the serialization data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serialization data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: fetches and deserializes a named struct field.
///
/// A missing field deserializes as [`Value::Null`] — matching upstream
/// serde's treatment of absent keys for `Option<T>` fields (they
/// become `None`); any non-nullable type still fails with the named
/// missing-field error.
#[doc(hidden)]
pub fn __field<T: Deserialize>(value: &Value, strukt: &str, field: &str) -> Result<T, Error> {
    match value.get(field) {
        Some(v) => T::from_value(v),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::msg(format!("{strukt}: missing field `{field}`"))),
    }
}

/// Derive-macro helper: fetches and deserializes a tuple element.
#[doc(hidden)]
pub fn __element<T: Deserialize>(value: &Value, strukt: &str, index: usize) -> Result<T, Error> {
    let items = value
        .as_array()
        .ok_or_else(|| Error::msg(format!("{strukt}: expected array")))?;
    let v = items
        .get(index)
        .ok_or_else(|| Error::msg(format!("{strukt}: missing element {index}")))?;
    T::from_value(v)
}

// --- primitive impls -------------------------------------------------

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::U64(v) => v,
                    Value::I64(v) if v >= 0 => v as u64,
                    Value::F64(v) if v >= 0.0 && v.fract() == 0.0 => v as u64,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($ty)))),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error::msg(concat!(stringify!($ty), " out of range")))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::U64(v) => i64::try_from(v)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    Value::I64(v) => v,
                    Value::F64(v) if v.fract() == 0.0 => v as i64,
                    _ => return Err(Error::msg(concat!("expected ", stringify!($ty)))),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error::msg(concat!(stringify!($ty), " out of range")))
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::F64(v) => Ok(v),
            Value::U64(v) => Ok(v as f64),
            Value::I64(v) => Ok(v as f64),
            _ => Err(Error::msg("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        // Deserializing into `&'static str` only happens for static
        // label fields in report rows; leaking the handful of short
        // strings involved is acceptable in this offline subset.
        value
            .as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                Ok(($(__element::<$name>(value, "tuple", $idx)?,)+))
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
