//! The fleet-shared tier's conservation law and equality pins.
//!
//! The global directory (PR 8) threads through the serving engine's
//! fork-miss path and the cluster engine's barriers. With the shared
//! tier *off* (the default), every one of those changes must be
//! invisible: this file re-asserts the PR 7 tiered-KV pin and the
//! routing-equality fleet goldens against the default (shared-tier-off)
//! specs. With the tier *on*, accounting must conserve tokens: a spill
//! → remote fetch → republish round trip leaves pool refcounts and
//! directory occupancy exactly where they started, which the proptest
//! here drives over random prefix populations.

use papi::core::{
    ClusterEngine, ClusterReport, ClusterSpec, DesignKind, ServingEngine, ServingReport,
    SessionTuning, SystemConfig,
};
use papi::kv::{GlobalKvTier, KvBlockPool, KvTier, PublishOutcome};
use papi::llm::ModelPreset;
use papi::workload::{ConversationDataset, DatasetKind, PolicySpec, ServingWorkload};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Conservation: spill → remote fetch → republish drains to pristine.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random prefix populations round-tripped through the full
    /// fleet-shared data path: the home replica spills each prefix
    /// into its private tier and registers it in the directory; a
    /// fetching replica re-materializes it block-aligned in its own
    /// pool and republishes (first-writer-wins: the directory entry
    /// must not change hands); random extensions only ever grow the
    /// record. Afterwards everything is torn down and every structure
    /// must read exactly pristine — any leak or double-free is an
    /// accounting bug in the tier, the directory, or the pool.
    #[test]
    fn global_tier_accounting_conserves_tokens(
        prefixes in proptest::collection::vec((1u64..97, 1u64..5001, 0u64..3001), 1..24),
        block_size_pick in 0usize..3,
    ) {
        let block_size = [8u64, 16, 64][block_size_pick];
        let budget_blocks = 1_000_000; // never the binding constraint here
        let mut home_pool = KvBlockPool::new(block_size, 1_000_000);
        let mut fetcher_pool = KvBlockPool::new(block_size, 1_000_000);
        let mut home_tier = KvTier::new(block_size, budget_blocks);
        let mut directory = GlobalKvTier::new(block_size);

        // Dedup keys (later entries win) so expectations are well-defined.
        let mut population: std::collections::BTreeMap<u64, (u64, u64)> = Default::default();
        for (key, tokens, extra) in prefixes {
            population.insert(key, (tokens, extra));
        }

        let mut fetched_seqs = Vec::new();
        for (&key, &(tokens, extra)) in &population {
            // Home replica: hold the prefix hot, then spill it out.
            let mut seq = home_pool.new_seq();
            prop_assert!(home_pool.append(&mut seq, tokens));
            prop_assert!(home_tier.spill(key, tokens).accepted);
            home_pool.release_seq(seq);
            prop_assert_eq!(directory.publish(key, 0, tokens), PublishOutcome::Registered);

            // Optional later turn on the home: the record only grows.
            if extra > 0 {
                prop_assert!(home_tier.spill(key, tokens + extra).accepted);
                prop_assert_eq!(
                    directory.publish(key, 0, tokens + extra),
                    PublishOutcome::Extended
                );
            }

            // Fetching replica: directory hit, block-aligned
            // re-materialization, local republish.
            let entry = directory.lookup(key).expect("just published");
            prop_assert_eq!(entry.owner, 0, "first writer keeps ownership");
            prop_assert_eq!(entry.tokens, tokens + extra);
            let mut seq = fetcher_pool.new_seq();
            prop_assert!(fetcher_pool.append(&mut seq, entry.tokens));
            // Republishing what the fleet already knows is a no-op: no
            // ownership transfer, no token growth, no double count.
            prop_assert_eq!(
                directory.publish(key, 1, entry.tokens),
                PublishOutcome::Unchanged
            );
            fetched_seqs.push((key, seq));
        }

        // Directory occupancy equals the longest published record per
        // key — tokens are conserved, never double-counted.
        let want_tokens: u64 = population.values().map(|&(t, e)| t + e).sum();
        let want_blocks: u64 = population
            .values()
            .map(|&(t, e)| directory.blocks_for(t + e))
            .sum();
        let stats = directory.stats();
        prop_assert_eq!(stats.entries, population.len() as u64);
        prop_assert_eq!(stats.tokens, want_tokens);
        prop_assert_eq!(stats.blocks, want_blocks);
        prop_assert_eq!(directory.publishes(), population.len() as u64);
        prop_assert_eq!(
            directory.extensions(),
            population.values().filter(|&&(_, e)| e > 0).count() as u64
        );

        // The fetching pool holds exactly the block-aligned footprint
        // of what it materialized.
        prop_assert_eq!(fetcher_pool.blocks_in_use(), want_blocks);

        // Tear everything down: fetch each record out of the home tier
        // (the prefix lives in exactly one tier at a time), release the
        // fetcher's sequences, retire the directory entries.
        for (&key, &(tokens, extra)) in &population {
            prop_assert_eq!(home_tier.fetch(key), Some(tokens + extra));
            let retired = directory.retire(key).expect("still registered");
            prop_assert_eq!(retired.tokens, tokens + extra);
        }
        for (_, seq) in fetched_seqs {
            fetcher_pool.release_seq(seq);
        }

        // Pristine: no leaked blocks, no stale refcounts, no residue.
        prop_assert_eq!(home_pool.blocks_in_use(), 0);
        prop_assert_eq!(fetcher_pool.blocks_in_use(), 0);
        prop_assert_eq!(home_tier.blocks_in_use(), 0);
        prop_assert!(home_tier.is_empty());
        prop_assert!(directory.is_empty());
        let drained = directory.stats();
        prop_assert_eq!(drained.entries, 0);
        prop_assert_eq!(drained.tokens, 0);
        prop_assert_eq!(drained.blocks, 0);
    }
}

// ---------------------------------------------------------------------
// Equality pins: shared-tier-off reproduces PR 7 bit for bit.
// ---------------------------------------------------------------------

/// FNV-1a over every schedule-determining field of a serving report —
/// identical to `tests/tiered_kv.rs`, so both pins fail the same way.
fn serving_fingerprint(report: &ServingReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in &report.records {
        mix(r.id);
        mix(r.arrival.value().to_bits());
        mix(r.admitted.value().to_bits());
        mix(r.first_token.value().to_bits());
        mix(r.finished.value().to_bits());
        mix(r.prompt_tokens);
        mix(r.output_tokens);
        mix(r.preemptions);
    }
    for p in &report.placements {
        mix(*p as u64);
    }
    for r in &report.rlp_series {
        mix(*r);
    }
    h
}

/// FNV-1a over every replica's records, placements, RLP series,
/// makespan, and energy — identical to `tests/routing_equality.rs`.
fn cluster_fingerprint(report: &ClusterReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for replica in &report.replicas {
        mix(replica.records.len() as u64);
        for r in &replica.records {
            mix(r.id);
            mix(r.arrival.value().to_bits());
            mix(r.admitted.value().to_bits());
            mix(r.first_token.value().to_bits());
            mix(r.finished.value().to_bits());
            mix(r.prompt_tokens);
            mix(r.output_tokens);
            mix(r.preemptions);
        }
        for p in &replica.placements {
            mix(*p as u64);
        }
        for r in &replica.rlp_series {
            mix(*r);
        }
        mix(replica.makespan.value().to_bits());
        mix(replica.energy.value().to_bits());
    }
    h
}

/// The PR 7 tiered-KV pin (`tests/tiered_kv.rs`, captured at PR 6
/// HEAD) still holds with the global-tier plumbing compiled into the
/// engine and disabled: the `ServingSession::global` slot defaults to
/// `None` and every remote-fetch branch is dead.
#[test]
fn shared_tier_off_engine_reproduces_the_tiered_kv_pin() {
    let workload = ServingWorkload::poisson(
        ConversationDataset::multi_turn(DatasetKind::LongContext, 4096, 3),
        1.0,
        120,
    )
    .with_seed(23);
    let report = ServingEngine::new(SystemConfig::build(
        DesignKind::PimOnlyPapi,
        ModelPreset::Gpt3_175B.config(),
    ))
    .with_max_batch(16)
    .with_kv_block_size(16)
    .with_prefix_sharing(true)
    .run(&workload);
    assert_eq!(report.makespan.value().to_bits(), 0x409274384afd44c3);
    assert_eq!(report.energy.value().to_bits(), 0x4123aa42ac3a0148);
    assert_eq!(report.prefill_time.value().to_bits(), 0x4091c55f218460bc);
    assert_eq!(report.iterations, 1499);
    assert_eq!(report.tokens, 19753);
    assert_eq!(serving_fingerprint(&report), 0x0c68159526a36a65);
    // And the remote-fetch counters stay identically zero.
    assert_eq!(report.kv.remote_fetches, 0);
    assert_eq!(report.kv.remote_fetched_tokens, 0);
    assert_eq!(report.kv.remote_fetch_time_s, 0.0);
    assert_eq!(report.kv.remote_fetch_energy_j, 0.0);
}

/// The routing-equality fleet goldens still hold with the shared-tier
/// control plane compiled into both cluster loops and disabled: a
/// default `ClusterSpec` opens no directory, schedules no sync ticks,
/// and reports `global_tier: None`.
#[test]
fn shared_tier_off_fleets_reproduce_the_routing_pins() {
    let goldens: [(PolicySpec, u64); 3] = [
        (PolicySpec::RoundRobin, 0x9d08152194e8d09a),
        (PolicySpec::JoinShortestQueue, 0xaa50d4cc4e42604f),
        (PolicySpec::KvPressureAware, 0x41328d2bfccbd824),
    ];
    for (routing, want) in goldens {
        let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 16.0, 60).with_seed(17);
        let report = ClusterEngine::new(
            ClusterSpec::new(
                DesignKind::PimOnlyPapi,
                ModelPreset::Llama65B.config(),
                1,
                3,
            )
            .with_routing(routing)
            .with_tuning(SessionTuning::default().with_max_batch(8)),
        )
        .expect("valid fleet")
        .run(&workload);
        assert!(
            report.global_tier.is_none(),
            "a default fleet must not report a shared tier"
        );
        assert_eq!(
            cluster_fingerprint(&report),
            want,
            "shared-tier-off fleet drifted from the PR 7 pin"
        );
    }
}

/// The paged prefix-sharing conversation fleet — the shape closest to
/// the shared-tier path (block pool, prefix tree, multi-turn forks) —
/// also reproduces exactly with the tier off.
#[test]
fn shared_tier_off_paged_fleet_reproduces_the_conversation_pin() {
    let workload = ServingWorkload::poisson(
        ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
        6.0,
        64,
    )
    .with_seed(13);
    let report = ClusterEngine::new(
        ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            1,
            4,
        )
        .with_routing(PolicySpec::JoinShortestQueue)
        .with_tuning(
            SessionTuning::default()
                .with_max_batch(16)
                .with_kv_block_size(16)
                .with_prefix_sharing(true)
                .with_prefill_chunk(512),
        ),
    )
    .expect("valid fleet")
    .run(&workload);
    assert!(report.global_tier.is_none());
    assert_eq!(cluster_fingerprint(&report), 0xdd83989553bd960f);
}
