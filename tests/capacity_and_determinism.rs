//! Integration tests for capacity planning across crates and for
//! end-to-end determinism of the whole stack.

use papi::core::{DecodingSimulator, DesignKind, SystemConfig};
use papi::llm::kvcache::KvCachePlanner;
use papi::llm::ModelPreset;
use papi::types::Bytes;
use papi::workload::{DatasetKind, WorkloadSpec};

/// The KV planner's admissible batch actually decodes within the
/// Attn-PIM pool, and the first inadmissible one is rejected by the
/// engine's capacity check.
#[test]
fn planner_and_engine_agree_on_capacity() {
    let model = ModelPreset::Gpt3_175B.config();
    let planner = KvCachePlanner::new(&model);
    let config = SystemConfig::pim_only_papi(model.clone());
    let pool = Bytes::new(16e9 * 60.0); // 60 × 16 GB Attn-PIM devices

    let seq_len = 4096u64;
    let fits = planner.max_requests(pool, seq_len, false);
    assert!(fits > 0);
    let demand_ok = planner.batch_bytes(fits, seq_len);
    let demand_overflow = planner.batch_bytes(fits + 40, seq_len);
    assert!(config.validate_capacity(demand_ok.value()).is_ok());
    assert!(config.validate_capacity(demand_overflow.value()).is_err());
}

/// §3.2's memory-capacity argument, end to end: the planner's §3.2
/// numbers bound the initial RLP the engine can serve.
#[test]
fn long_sequences_shrink_admissible_batch() {
    let model = ModelPreset::Gpt3_175B.config();
    let planner = KvCachePlanner::new(&model);
    let memory = Bytes::new(960e9);
    let short = planner.max_requests(memory, 256, false);
    let long = planner.max_requests(memory, 4096, false);
    assert!(short / long >= 12, "short {short} vs long {long}");
}

/// Same seed ⇒ identical reports across independently built systems;
/// different seeds ⇒ different workloads.
#[test]
fn whole_stack_is_deterministic() {
    let mk_report = |seed: u64| {
        let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 8, 2)
            .with_seed(seed)
            .with_max_iterations(64);
        DecodingSimulator::new(SystemConfig::build(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
        ))
        .run(&workload)
    };
    let a = mk_report(99);
    let b = mk_report(99);
    let c = mk_report(100);
    assert_eq!(a.total_latency(), b.total_latency());
    assert_eq!(a.total_energy(), b.total_energy());
    assert_eq!(a.placements, b.placements);
    assert_ne!(a.total_latency(), c.total_latency());
}

/// The facade re-exports compose: every layer is reachable through
/// `papi::*` and the types line up across crate boundaries.
#[test]
fn facade_composes_all_layers() {
    // dram → pim
    let device = papi::pim::PimDevice::attn_pim();
    let bw = papi::dram::derive::pim_streaming_bandwidth(&device.hbm, 8, 16);
    assert!(bw.per_bank.as_gb_per_sec() > 10.0);
    // llm → sched
    let ai =
        papi::sched::AiEstimator::exact(papi::llm::ModelPreset::Gpt3_175B.config().hidden, 16, 2);
    assert!(ai > 0.0 && ai < 32.0);
    // interconnect
    let topo = papi::interconnect::SystemTopology::papi_default(30, 60).unwrap();
    let t = topo.transfer_time(
        papi::interconnect::Route::PuToAttnPim,
        papi::types::Bytes::from_kib(256.0),
    );
    assert!(t.as_micros() > 1.0);
}
