//! Equality pin for the paged-KV refactor: the paged serving engine in
//! its scalar configuration — block size 1, prefix sharing off,
//! monolithic prefill (all defaults) — must reproduce the pre-refactor
//! engine's `ServingReport` bit for bit.
//!
//! The golden values below were captured from the engine at commit
//! 80b51bc (the last scalar `kv_tokens` implementation) on the exact
//! workloads the serving unit tests exercise: clock, energy and prefill
//! time as `f64::to_bits`, plus an FNV fingerprint over every request
//! record, placement, and RLP sample. Any behavioural drift in
//! admission order, preemption, pricing, or RNG consumption changes at
//! least one of these numbers.

use papi::core::{DesignKind, ServingEngine, ServingReport, SystemConfig};
use papi::llm::ModelPreset;
use papi::workload::{ArrivalProcess, DatasetKind, ServingWorkload};

/// FNV-1a over the report's per-request records, placements, and RLP
/// series (field order fixed; floats hashed by bit pattern).
fn fingerprint(report: &ServingReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in &report.records {
        mix(r.id);
        mix(r.arrival.value().to_bits());
        mix(r.admitted.value().to_bits());
        mix(r.first_token.value().to_bits());
        mix(r.finished.value().to_bits());
        mix(r.prompt_tokens);
        mix(r.output_tokens);
        mix(r.preemptions);
    }
    for p in &report.placements {
        mix(*p as u64);
    }
    for r in &report.rlp_series {
        mix(*r);
    }
    h
}

struct Golden {
    name: &'static str,
    makespan_bits: u64,
    energy_bits: u64,
    prefill_bits: u64,
    iterations: u64,
    tokens: u64,
    preemptions: u64,
    peak_rlp: u64,
    peak_kv_tokens: u64,
    fingerprint: u64,
}

fn assert_matches(report: &ServingReport, golden: &Golden) {
    assert_eq!(
        report.makespan.value().to_bits(),
        golden.makespan_bits,
        "{}: makespan drifted from the pre-refactor engine",
        golden.name
    );
    assert_eq!(
        report.energy.value().to_bits(),
        golden.energy_bits,
        "{}: energy drifted",
        golden.name
    );
    assert_eq!(
        report.prefill_time.value().to_bits(),
        golden.prefill_bits,
        "{}: prefill time drifted",
        golden.name
    );
    assert_eq!(report.iterations, golden.iterations, "{}", golden.name);
    assert_eq!(report.tokens, golden.tokens, "{}", golden.name);
    assert_eq!(report.preemptions, golden.preemptions, "{}", golden.name);
    assert_eq!(report.peak_rlp, golden.peak_rlp, "{}", golden.name);
    assert_eq!(
        report.peak_kv_tokens, golden.peak_kv_tokens,
        "{}",
        golden.name
    );
    assert_eq!(
        fingerprint(report),
        golden.fingerprint,
        "{}: record/placement/RLP fingerprint drifted",
        golden.name
    );
}

#[test]
fn scalar_configuration_reproduces_the_pre_refactor_reports_bit_for_bit() {
    let cases = [
        Golden {
            name: "a100_attacc-llama65b-poisson",
            makespan_bits: 0x402971de872cabec,
            energy_bits: 0x40e22a1e364aaf83,
            prefill_bits: 0x3fe6cbaae43f388c,
            iterations: 824,
            tokens: 4599,
            preemptions: 0,
            peak_rlp: 13,
            peak_kv_tokens: 2770,
            fingerprint: 0x8cc6844d030223ac,
        },
        Golden {
            name: "pim_only-gpt175b-kv-pressure",
            makespan_bits: 0x40513fa2bc16a762,
            energy_bits: 0x411065248f601886,
            prefill_bits: 0x4015b4c24460e492,
            iterations: 10350,
            tokens: 20664,
            preemptions: 0,
            peak_rlp: 5,
            peak_kv_tokens: 3371,
            fingerprint: 0xecc1664d89869caa,
        },
        Golden {
            name: "papi-llama65b-immediate",
            makespan_bits: 0x4037847399b472bb,
            energy_bits: 0x40ed2794c5721ce3,
            prefill_bits: 0x3fe65d03cc1c87d3,
            iterations: 2959,
            tokens: 36323,
            preemptions: 0,
            peak_rlp: 64,
            peak_kv_tokens: 19740,
            fingerprint: 0x17a7b8234be8bc6a,
        },
        Golden {
            name: "pim_only-gpt175b-adaptive-tlp",
            makespan_bits: 0x404545f858bf8126,
            energy_bits: 0x40ed7a1e763dc2c5,
            prefill_bits: 0x4015b4c24460e492,
            iterations: 1298,
            tokens: 20664,
            preemptions: 0,
            peak_rlp: 5,
            peak_kv_tokens: 3374,
            fingerprint: 0xf3b5bebb4ca7af78,
        },
    ];

    let reports = [
        ServingEngine::new(SystemConfig::build(
            DesignKind::A100AttAcc,
            ModelPreset::Llama65B.config(),
        ))
        .with_max_batch(16)
        .run(&ServingWorkload::poisson(DatasetKind::GeneralQa, 4.0, 48).with_seed(11)),
        ServingEngine::new(SystemConfig::build(
            DesignKind::PimOnlyPapi,
            ModelPreset::Gpt3_175B.config(),
        ))
        .with_max_batch(64)
        .with_kv_headroom(0.002)
        .run(
            &ServingWorkload::new(DatasetKind::CreativeWriting, ArrivalProcess::Immediate, 32)
                .with_seed(3),
        ),
        ServingEngine::new(SystemConfig::build(
            DesignKind::Papi,
            ModelPreset::Llama65B.config(),
        ))
        .with_max_batch(64)
        .run(
            &ServingWorkload::new(DatasetKind::CreativeWriting, ArrivalProcess::Immediate, 64)
                .with_seed(9),
        ),
        ServingEngine::new(SystemConfig::build(
            DesignKind::PimOnlyPapi,
            ModelPreset::Gpt3_175B.config(),
        ))
        .with_max_batch(32)
        .with_kv_headroom(0.002)
        .run(
            &ServingWorkload::new(DatasetKind::CreativeWriting, ArrivalProcess::Immediate, 32)
                .with_seed(3)
                .with_adaptive_tlp(64, 8),
        ),
    ];

    for (report, golden) in reports.iter().zip(&cases) {
        assert_matches(report, golden);
    }
}

/// Spelling the scalar configuration out explicitly (rather than via
/// defaults) is the same engine.
#[test]
fn explicit_scalar_options_match_the_defaults() {
    let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 4.0, 32).with_seed(11);
    let implicit = ServingEngine::new(SystemConfig::build(
        DesignKind::Papi,
        ModelPreset::Llama65B.config(),
    ))
    .with_max_batch(16)
    .run(&workload);
    let explicit = ServingEngine::new(SystemConfig::build(
        DesignKind::Papi,
        ModelPreset::Llama65B.config(),
    ))
    .with_max_batch(16)
    .with_kv_block_size(1)
    .with_prefix_sharing(false)
    .run(&workload);
    assert_eq!(implicit.records, explicit.records);
    assert_eq!(implicit.makespan, explicit.makespan);
    assert_eq!(implicit.energy, explicit.energy);
    assert_eq!(fingerprint(&implicit), fingerprint(&explicit));
}
