//! Behavioral tests for disaggregated prefill/decode fleets: request
//! and token conservation across KV migration, honest latency
//! accounting for the transfer, and role contracts — driven through
//! the `papi` facade.

use papi::core::{ClusterEngine, ClusterReport, ClusterSpec, DesignKind, SessionTuning};
use papi::interconnect::MigrationPricing;
use papi::llm::ModelPreset;
use papi::workload::{DatasetKind, MigrationSpec, PolicySpec, ReplicaRole, ServingWorkload};
use proptest::prelude::*;

fn split_fleet(
    dp: usize,
    prefill: usize,
    migration: MigrationSpec,
    pricing: MigrationPricing,
) -> ClusterEngine {
    let roles: Vec<ReplicaRole> = (0..dp)
        .map(|i| {
            if i < prefill {
                ReplicaRole::Prefill
            } else {
                ReplicaRole::Decode
            }
        })
        .collect();
    ClusterEngine::new(
        ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            1,
            dp,
        )
        .with_roles(roles)
        .with_migration(migration)
        .with_migration_pricing(pricing)
        .with_tuning(SessionTuning::default().with_max_batch(8)),
    )
    .expect("valid fleet")
}

/// Every request completed exactly once somewhere decode-capable, no
/// id duplicated, fleet totals equal per-replica sums, and every
/// record's timestamps are ordered.
fn assert_conserved(report: &ClusterReport, n: u64) {
    assert_eq!(report.requests(), n, "requests lost or duplicated");
    let per_replica: u64 = report.replicas.iter().map(|r| r.records.len() as u64).sum();
    assert_eq!(report.requests(), per_replica);
    let record_tokens: u64 = report.records().map(|r| r.output_tokens).sum();
    assert_eq!(report.tokens(), record_tokens, "token totals drifted");
    let mut ids: Vec<u64> = report.records().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, n, "a request id appears twice");
    for (idx, replica) in report.replicas.iter().enumerate() {
        if report.roles[idx] == ReplicaRole::Prefill {
            assert!(
                replica.records.is_empty(),
                "replica {idx} is prefill-only but recorded completions"
            );
        }
        for r in &replica.records {
            assert!(r.arrival.value() <= r.admitted.value());
            assert!(r.admitted.value() < r.first_token.value());
            assert!(r.first_token.value() <= r.finished.value());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation is a property of the migration machinery, not of
    /// any particular fleet split: across random seeds, fleet sizes,
    /// prefill/decode splits, and both built-in migration policies, no
    /// request is lost or double-counted while in flight over the
    /// fabric.
    #[test]
    fn migration_conserves_requests_and_tokens(
        seed in 0u64..1_000_000,
        dp in 2usize..5,
        prefill_share in 1usize..4,
        kv_pressure in proptest::bool::ANY,
    ) {
        let prefill = prefill_share.min(dp - 1);
        let migration = if kv_pressure {
            MigrationSpec::KvPressureAware
        } else {
            MigrationSpec::JoinShortestQueue
        };
        let workload =
            ServingWorkload::poisson(DatasetKind::GeneralQa, 12.0, 24).with_seed(seed);
        let report = split_fleet(dp, prefill, migration, MigrationPricing::Fabric)
            .run(&workload);
        assert_conserved(&report, 24);
        // Every request was admitted on a prefill-only replica, so
        // every request crossed the fabric exactly once.
        prop_assert_eq!(report.migration.migrations, 24);
        prop_assert!(report.migration.bytes > 0.0);
    }
}

/// The transfer is real latency: the same episode with fabric-priced
/// migration can only have equal-or-worse TTFTs than with free
/// migration, and the makespan stretches accordingly.
#[test]
fn priced_migration_shows_up_in_ttft() {
    let workload = ServingWorkload::poisson(DatasetKind::LongContext, 3.0, 24).with_seed(11);
    let free = split_fleet(
        2,
        1,
        MigrationSpec::JoinShortestQueue,
        MigrationPricing::Free,
    )
    .run(&workload);
    let priced = split_fleet(
        2,
        1,
        MigrationSpec::JoinShortestQueue,
        MigrationPricing::Fabric,
    )
    .run(&workload);
    assert_conserved(&free, 24);
    assert_conserved(&priced, 24);
    let free_ttft = free.ttft_summary().unwrap();
    let priced_ttft = priced.ttft_summary().unwrap();
    assert!(
        priced_ttft.mean.value() > free_ttft.mean.value(),
        "fabric transfer must cost TTFT: {} vs {}",
        priced_ttft.mean,
        free_ttft.mean
    );
    // The gap is at least one per-request transfer's worth on average
    // divided generously by queueing overlap — sanity, not precision:
    // the p50 transfer latency is a lower bound on what each request
    // paid.
    let transfer_p50 = priced.migration.latency.unwrap().p50.value();
    assert!(
        priced_ttft.mean.value() - free_ttft.mean.value() >= 0.5 * transfer_p50,
        "TTFT gap {} should reflect the {}s median transfer",
        priced_ttft.mean.value() - free_ttft.mean.value(),
        transfer_p50
    );
}

/// A custom migration policy drives the same seam the built-ins use,
/// and its label lands in the report.
#[test]
fn custom_migration_policy_drives_the_fleet() {
    use papi::workload::{MigrationContext, MigrationPolicy, Router};

    /// Always the highest-indexed decode-capable replica.
    #[derive(Debug)]
    struct LastDecode;

    impl MigrationPolicy for LastDecode {
        fn place(&mut self, ctx: &MigrationContext<'_>) -> usize {
            *ctx.decode_targets().last().expect("fleet is non-empty")
        }

        fn label(&self) -> String {
            "last-decode".to_owned()
        }
    }

    let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 8.0, 16).with_seed(3);
    let engine = split_fleet(
        3,
        1,
        MigrationSpec::JoinShortestQueue,
        MigrationPricing::Fabric,
    );
    let mut router = Router::new(PolicySpec::JoinShortestQueue);
    let mut policy = LastDecode;
    let report = engine.run_with_policies(&workload, &mut router, &mut policy);
    assert_conserved(&report, 16);
    assert_eq!(report.migration.policy, "last-decode");
    // Everything landed on replica 2, the policy's only pick.
    assert_eq!(report.replicas[2].records.len(), 16);
    assert!(report.replicas[1].records.is_empty());
}
