//! The tiered-KV equality pin and behavior contract.
//!
//! The capacity tier (PR 7) reroutes the engine's eviction path
//! through `relieve_prefix_cache` and probes the tier at admission
//! fork-misses. With the tier *off* (the default), every one of those
//! changes must be invisible: this file pins a saturated long-context
//! scenario — 58 prefix evictions, pool at 100% — to the exact
//! fingerprints the pre-tier engine produced, and then checks the
//! tier-on behavior the feature exists for: spills instead of
//! discards, priced fetches that land in TTFT, materially higher SLO
//! goodput under thrash.

use papi::core::{
    DesignKind, KvTierSpec, ServingEngine, ServingReport, SessionTuning, SloSpec, SystemConfig,
};
use papi::interconnect::TierPricing;
use papi::llm::ModelPreset;
use papi::workload::{ConversationDataset, DatasetKind, ServingWorkload};

/// FNV-1a over every schedule-determining field of the report — the
/// same mix as `tests/paged_equality.rs`, so the two pins fail the
/// same way on drift.
fn fingerprint(report: &ServingReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in &report.records {
        mix(r.id);
        mix(r.arrival.value().to_bits());
        mix(r.admitted.value().to_bits());
        mix(r.first_token.value().to_bits());
        mix(r.finished.value().to_bits());
        mix(r.prompt_tokens);
        mix(r.output_tokens);
        mix(r.preemptions);
    }
    for p in &report.placements {
        mix(*p as u64);
    }
    for r in &report.rlp_series {
        mix(*r);
    }
    h
}

/// A long-context multi-turn workload that saturates the PIM-only
/// pool: conversations resend ~4k-token contexts over 3 turns faster
/// than the cache can hold them, so the prefix cache thrashes (58 LRU
/// evictions at PR 6 HEAD).
fn thrashing_workload() -> ServingWorkload {
    ServingWorkload::poisson(
        ConversationDataset::multi_turn(DatasetKind::LongContext, 4096, 3),
        1.0,
        120,
    )
    .with_seed(23)
}

fn engine() -> ServingEngine {
    ServingEngine::new(SystemConfig::build(
        DesignKind::PimOnlyPapi,
        ModelPreset::Gpt3_175B.config(),
    ))
    .with_max_batch(16)
    .with_kv_block_size(16)
    .with_prefix_sharing(true)
}

struct Golden {
    makespan_bits: u64,
    energy_bits: u64,
    prefill_bits: u64,
    iterations: u64,
    tokens: u64,
    preemptions: u64,
    peak_rlp: u64,
    peak_kv_tokens: u64,
    fingerprint: u64,
}

/// Captured at PR 6 HEAD (`adb9013`), before the tier existed.
const TIER_OFF_GOLDEN: Golden = Golden {
    makespan_bits: 0x409274384afd44c3,
    energy_bits: 0x4123aa42ac3a0148,
    prefill_bits: 0x4091c55f218460bc,
    iterations: 1499,
    tokens: 19753,
    preemptions: 0,
    peak_rlp: 16,
    peak_kv_tokens: 143830,
    fingerprint: 0x0c68159526a36a65,
};

fn assert_matches_golden(report: &ServingReport, golden: &Golden) {
    assert_eq!(report.makespan.value().to_bits(), golden.makespan_bits);
    assert_eq!(report.energy.value().to_bits(), golden.energy_bits);
    assert_eq!(report.prefill_time.value().to_bits(), golden.prefill_bits);
    assert_eq!(report.iterations, golden.iterations);
    assert_eq!(report.tokens, golden.tokens);
    assert_eq!(report.preemptions, golden.preemptions);
    assert_eq!(report.peak_rlp, golden.peak_rlp);
    assert_eq!(report.peak_kv_tokens, golden.peak_kv_tokens);
    assert_eq!(fingerprint(report), golden.fingerprint);
}

#[test]
fn tier_off_reproduces_the_pre_tier_engine_bit_for_bit() {
    let report = engine().run(&thrashing_workload());
    // The pin only guards the eviction rewrite if eviction actually
    // ran: the scenario must genuinely thrash.
    assert!(
        report.kv.prefix_evictions > 0,
        "pin scenario stopped exercising eviction ({} evictions)",
        report.kv.prefix_evictions
    );
    assert_eq!(report.kv.total_blocks, report.kv.peak_blocks_in_use);
    assert_matches_golden(&report, &TIER_OFF_GOLDEN);
    // And the tier counters stay identically zero.
    assert_eq!(report.kv.tier_budget_blocks, 0);
    assert_eq!(report.kv.tier_spills, 0);
    assert_eq!(report.kv.tier_fetches, 0);
    assert_eq!(report.kv.tier_fetch_time_s, 0.0);
}

#[test]
fn explicit_none_tier_is_the_default() {
    let tuning = SessionTuning::new()
        .with_max_batch(16)
        .with_kv_block_size(16)
        .with_prefix_sharing(true);
    assert_eq!(tuning.kv_tier, None);
    let report = ServingEngine::new(SystemConfig::build(
        DesignKind::PimOnlyPapi,
        ModelPreset::Gpt3_175B.config(),
    ))
    .with_tuning(tuning)
    .run(&thrashing_workload());
    assert_matches_golden(&report, &TIER_OFF_GOLDEN);
}

#[test]
fn spill_to_tier_beats_eviction_under_thrash() {
    let workload = thrashing_workload();
    let evict = engine().run(&workload);
    let tiered = engine()
        .with_kv_tier(KvTierSpec::new(60_000))
        .run(&workload);

    // The tier kept the evicted prefixes and served them back.
    assert!(tiered.kv.tier_spills > 0, "no spills under thrash");
    assert!(tiered.kv.tier_fetches > 0, "no fetches under thrash");
    assert!(tiered.kv.tier_fetched_tokens > 0);
    assert!(tiered.kv.tier_fetch_time_s > 0.0, "fetches must be priced");
    assert!(tiered.kv.tier_fetch_energy_j > 0.0);
    assert!(tiered.kv.tier_peak_blocks > 0);
    assert!(tiered.kv.tier_peak_blocks <= tiered.kv.tier_budget_blocks);

    // Fetched tokens count as cache hits, so hit rate and prefill
    // work both improve materially.
    assert!(
        tiered.kv.hit_rate() > evict.kv.hit_rate() + 0.2,
        "tier hit rate {:.3} should clear evict {:.3} by a wide margin",
        tiered.kv.hit_rate(),
        evict.kv.hit_rate()
    );
    assert!(tiered.kv.prefilled_tokens < evict.kv.prefilled_tokens);
    assert!(tiered.makespan.value() < evict.makespan.value());

    // And the headline: materially higher SLO goodput from the same
    // hot pool.
    let slo = SloSpec::interactive(600_000.0, 400.0);
    assert!(
        tiered.goodput(&slo) > 2.0 * evict.goodput(&slo),
        "tier goodput {:.4} should dwarf evict {:.4}",
        tiered.goodput(&slo),
        evict.goodput(&slo)
    );
}

#[test]
fn fetch_pricing_lands_in_ttft() {
    let workload = thrashing_workload();
    let priced = engine()
        .with_kv_tier(KvTierSpec::new(60_000))
        .run(&workload);
    let free = engine()
        .with_kv_tier(KvTierSpec::new(60_000).with_pricing(TierPricing::Free))
        .run(&workload);
    // Same tier geometry: both serve the same fetch traffic, but only
    // the priced run pays for it — on the critical path.
    assert_eq!(priced.kv.tier_fetches, free.kv.tier_fetches);
    assert_eq!(priced.kv.tier_fetched_tokens, free.kv.tier_fetched_tokens);
    assert_eq!(free.kv.tier_fetch_time_s, 0.0);
    assert!(priced.kv.tier_fetch_time_s > 0.0);
    let priced_p99 = priced.ttft_summary().expect("non-empty").p99;
    let free_p99 = free.ttft_summary().expect("non-empty").p99;
    assert!(
        priced_p99.value() > free_p99.value(),
        "priced fetches must show up in TTFT p99 ({priced_p99} vs {free_p99})"
    );
    // The priced transfer time is part of prefill time, hence TTFT.
    assert!(priced.prefill_time.value() > free.prefill_time.value());
}

#[test]
fn tier_occupancy_reaches_the_replica_snapshot() {
    let workload = thrashing_workload();
    let tiered_engine = engine().with_kv_tier(KvTierSpec::new(60_000));
    let mut session = tiered_engine.open_session(&workload);
    for request in workload.requests() {
        session.push(request);
    }
    let fresh = session.snapshot();
    assert_eq!(fresh.kv_tier_budget_blocks, 60_000);
    assert_eq!(fresh.kv_tier_blocks_in_use, 0);
    let mut peak = 0;
    while session.step() == papi::core::SessionStatus::Advanced {
        peak = peak.max(session.snapshot().kv_tier_blocks_in_use);
    }
    assert!(peak > 0, "spills never showed up in the snapshot");
    assert!(peak <= 60_000);
}

#[test]
#[should_panic(expected = "prefix_sharing")]
fn tier_without_prefix_sharing_is_rejected() {
    SessionTuning::new()
        .with_kv_tier(KvTierSpec::new(1_000))
        .validate();
}
