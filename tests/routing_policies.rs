//! Behavioral tests for the trait-based routing API: conservation under
//! arbitrary policies, prefix-affinity's conversation stickiness at
//! fleet scale, and the adaptive affinity/balance hybrid's saturation
//! behavior — driven through the `papi` facade.

use papi::core::experiments::RoutingSweep;
use papi::core::{ClusterEngine, ClusterSpec, DesignKind, SessionTuning, SloSpec};
use papi::llm::ModelPreset;
use papi::workload::{
    ConversationDataset, DatasetKind, PolicySpec, RouteContext, RoutePolicy, ServingWorkload,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// A deliberately structure-free policy: an LCG over the proptest seed
/// picks any in-range replica, ignoring every snapshot. If the cluster
/// engine conserves requests under this, it conserves them under any
/// well-typed policy.
#[derive(Debug)]
struct ArbitraryPolicy {
    state: u64,
}

impl RoutePolicy for ArbitraryPolicy {
    fn route(&mut self, ctx: &RouteContext<'_>) -> usize {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.state >> 33) % ctx.replicas.len() as u64) as usize
    }

    fn label(&self) -> String {
        "arbitrary".to_owned()
    }
}

fn fleet(dp: usize) -> ClusterEngine {
    ClusterEngine::new(
        ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            1,
            dp,
        )
        .with_tuning(SessionTuning::default().with_max_batch(8)),
    )
    .expect("valid fleet")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fleet-wide conservation is a property of the engine, not of any
    /// particular policy: any `RoutePolicy` that returns in-range
    /// indices completes every request exactly once, with fleet totals
    /// equal to the per-replica sums.
    #[test]
    fn any_in_range_policy_conserves_requests_and_tokens(
        seed in 0u64..1_000_000,
        dp in 2usize..5,
    ) {
        let workload =
            ServingWorkload::poisson(DatasetKind::GeneralQa, 12.0, 24).with_seed(seed);
        let mut policy = ArbitraryPolicy { state: seed | 1 };
        let report = fleet(dp).run_with_policy(&workload, &mut policy);
        prop_assert_eq!(report.routing.as_str(), "arbitrary");
        prop_assert_eq!(report.requests(), 24);
        prop_assert_eq!(report.routing_decisions, 24);
        let replica_requests: u64 =
            report.replicas.iter().map(|r| r.records.len() as u64).sum();
        prop_assert_eq!(report.requests(), replica_requests);
        let replica_tokens: u64 = report.replicas.iter().map(|r| r.tokens).sum();
        prop_assert_eq!(report.tokens(), replica_tokens);
        // No request is duplicated across replicas.
        let mut ids: Vec<u64> = report.records().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), 24);
    }
}

/// The ROADMAP follow-up closed by this PR: past saturation, pure
/// affinity stacks hot queues and loses goodput — the adaptive hybrid
/// detects the fleet-wide queue pressure and degrades to JSQ, beating
/// pure affinity where it fails while matching it where it wins.
#[test]
fn adaptive_affinity_beats_pure_affinity_past_saturation() {
    // The PR 4 `RoutingSweep` setup: 4 PIM-only replicas, multi-turn
    // chat with prefix sharing, moderate (6/s) and saturating (12/s)
    // offered loads.
    let rows = RoutingSweep {
        model: ModelPreset::Llama65B,
        design: DesignKind::PimOnlyPapi,
        conversations: ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
        rates: vec![6.0, 12.0],
        num_requests: 64,
        tp_degree: 1,
        dp_replicas: 4,
        policies: vec![
            PolicySpec::prefix_affinity(),
            PolicySpec::adaptive_affinity(),
        ],
        tuning: SessionTuning::default()
            .with_max_batch(16)
            .with_kv_block_size(16)
            .with_prefix_sharing(true),
        slo: SloSpec::interactive(4_000.0, 80.0),
        seed: 7,
    }
    .run();
    assert_eq!(rows.len(), 4);
    let at = |routing: &str, rate: f64| {
        rows.iter()
            .find(|r| r.routing == routing && r.rate_per_sec == rate)
            .expect("swept point")
    };
    // Past saturation the hybrid out-serves pure affinity: balancing
    // drains the hot queues stickiness builds.
    let pure_hot = at("prefix-affinity", 12.0);
    let hybrid_hot = at("adaptive-affinity", 12.0);
    assert_eq!(pure_hot.requests, 64);
    assert_eq!(hybrid_hot.requests, 64);
    assert!(
        hybrid_hot.goodput_rps > pure_hot.goodput_rps,
        "past saturation the hybrid must beat pure affinity: {} vs {}",
        hybrid_hot.goodput_rps,
        pure_hot.goodput_rps
    );
    // At moderate load the hybrid still behaves like affinity — it
    // keeps most of the fleet-wide cache hit rate stickiness buys.
    let pure_warm = at("prefix-affinity", 6.0);
    let hybrid_warm = at("adaptive-affinity", 6.0);
    assert!(
        hybrid_warm.cache_hit_rate > 0.5 * pure_warm.cache_hit_rate,
        "below saturation the hybrid should stay mostly sticky: {} vs {}",
        hybrid_warm.cache_hit_rate,
        pure_warm.cache_hit_rate
    );
}

/// At fleet scale with roomy DRAM, prefix-affinity keeps every turn of
/// every conversation on a single replica (so each replica's private
/// prefix cache sees the whole chain), while still using several
/// replicas across conversations.
#[test]
fn prefix_affinity_pins_conversations_to_one_replica_each() {
    let turns = 4;
    let n = 64;
    let conversations = n / turns; // turn-major ids: conv = id % 16
    let workload = ServingWorkload::poisson(
        ConversationDataset::multi_turn(DatasetKind::GeneralQa, 256, turns),
        4.0,
        n,
    )
    .with_seed(23);
    let report = ClusterEngine::new(
        ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            1,
            4,
        )
        .with_routing(PolicySpec::prefix_affinity())
        .with_tuning(
            SessionTuning::default()
                .with_max_batch(16)
                .with_kv_block_size(16)
                .with_prefix_sharing(true),
        ),
    )
    .expect("valid fleet")
    .run(&workload);
    assert_eq!(report.routing, "prefix-affinity");
    assert_eq!(report.requests(), n as u64);

    // Conversation id -> set of replicas that served its turns.
    let mut replicas_of: HashMap<u64, Vec<usize>> = HashMap::new();
    for (replica_idx, replica) in report.replicas.iter().enumerate() {
        for record in &replica.records {
            let conv = record.id % conversations as u64;
            let entry = replicas_of.entry(conv).or_default();
            if !entry.contains(&replica_idx) {
                entry.push(replica_idx);
            }
        }
    }
    assert_eq!(replicas_of.len(), conversations);
    for (conv, replicas) in &replicas_of {
        assert_eq!(
            replicas.len(),
            1,
            "conversation {conv} scattered across replicas {replicas:?}"
        );
    }
    // The hash spreads conversations over the fleet, so affinity is not
    // just funnelling everything into one node.
    let used: std::collections::BTreeSet<usize> = replicas_of.values().map(|r| r[0]).collect();
    assert!(
        used.len() >= 3,
        "16 conversations should span most of a 4-replica fleet, used {used:?}"
    );
}
