//! Elastic-autoscaling invariants, driven through the public fleet
//! API:
//!
//! - **Conservation under arbitrary scale schedules**: a scripted
//!   autoscaler activating and draining replicas at random must never
//!   lose or duplicate a request — every workload request completes
//!   exactly once, whatever the lifecycle churn. The engine's own
//!   asserts additionally guarantee no arrival is ever routed to a
//!   `Warming`, `Draining`, or `Retired` replica.
//! - **Lifecycle legality**: every logged transition follows the
//!   `Warming → Active → Draining → Retired` state machine (plus the
//!   warm drain-cancel edge `Draining → Active`), and replica-hours
//!   never exceed the fixed fleet's rental.
//! - **Consistent-hash remap bounds**: adding or removing one member
//!   of a [`HashRing`] re-homes only a bounded fraction of the key
//!   space — the property that keeps prefix caches warm across scale
//!   events — and rings over fixed membership are deterministic.

use papi::core::{
    AutoscalePolicy, AutoscalePolicySpec, AutoscaleSpec, AutoscaleView, ClusterEngine, ClusterSpec,
    DesignKind, ScaleAction, SessionTuning, SloSpec, StepMode,
};
use papi::llm::ModelPreset;
use papi::workload::{
    ArrivalProcess, ConversationDataset, DatasetKind, HashRing, PolicySpec, ReplicaState,
    ServingWorkload,
};
use proptest::prelude::*;

/// A deterministic adversary: decides from a splitmix64 stream, so an
/// arbitrary (but reproducible) mix of activations and drains hits the
/// engine — including no-ops on already-active replicas, drains the
/// `min_replicas` floor must refuse, and drain-cancels.
#[derive(Debug)]
struct ScriptedPolicy {
    state: u64,
}

impl ScriptedPolicy {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl AutoscalePolicy for ScriptedPolicy {
    fn decide(&mut self, view: &AutoscaleView<'_>) -> Vec<ScaleAction> {
        let n = view.replicas.len() as u64;
        let pick = |z: u64| (z % n) as usize;
        match self.next() % 4 {
            0 => vec![ScaleAction::Activate(pick(self.next()))],
            1 => vec![ScaleAction::Drain(pick(self.next()))],
            2 => vec![
                ScaleAction::Activate(pick(self.next())),
                ScaleAction::Drain(pick(self.next())),
            ],
            _ => Vec::new(),
        }
    }

    fn label(&self) -> String {
        "scripted".into()
    }
}

/// The allowed lifecycle edges (drain-cancel included).
fn legal_transition(from: ReplicaState, to: ReplicaState) -> bool {
    matches!(
        (from, to),
        (ReplicaState::Retired, ReplicaState::Warming)
            | (ReplicaState::Warming, ReplicaState::Active)
            | (ReplicaState::Active, ReplicaState::Draining)
            | (ReplicaState::Draining, ReplicaState::Retired)
            | (ReplicaState::Draining, ReplicaState::Active)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Requests and tokens are conserved across arbitrary scale
    /// schedules, in both step modes, and every logged transition is
    /// legal.
    #[test]
    fn scripted_scaling_conserves_requests(
        seed in 0u64..1_000_000,
        dp in 2usize..6,
        initial in 1usize..4,
        sequential in proptest::bool::ANY,
    ) {
        let initial = initial.min(dp);
        let n = 40usize;
        let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 8.0, n).with_seed(seed);
        let slo = SloSpec::interactive(2_000.0, 100.0);
        let engine = ClusterEngine::new(
            ClusterSpec::new(DesignKind::PimOnlyPapi, ModelPreset::Llama65B.config(), 1, dp)
                .with_tuning(SessionTuning::default().with_max_batch(8))
                .with_step_mode(if sequential {
                    StepMode::Sequential
                } else {
                    StepMode::Parallel
                })
                .with_autoscale(
                    AutoscaleSpec::new(AutoscalePolicySpec::queue_depth(), slo)
                        .with_min_replicas(1)
                        .with_initial_replicas(initial)
                        .with_spin_up(1.5)
                        .with_decide_interval(0.5),
                ),
        )
        .expect("valid elastic fleet");
        let report = engine.run_elastic(&workload, &mut ScriptedPolicy { state: seed });

        // Every request completes exactly once, wherever the churn
        // moved the active set.
        prop_assert_eq!(report.requests(), n as u64);
        let mut ids: Vec<u64> = report.records().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());

        let cost = report.fleet_cost.expect("elastic fleets report cost");
        prop_assert_eq!(cost.policy.as_str(), "scripted");
        // Per-replica transition logs must follow the state machine
        // from each replica's initial state.
        let mut state: Vec<ReplicaState> = (0..dp)
            .map(|idx| {
                if idx < initial {
                    ReplicaState::Active
                } else {
                    ReplicaState::Retired
                }
            })
            .collect();
        let mut last_at = 0.0f64;
        for event in &cost.scale_events {
            prop_assert!(event.at_s >= last_at, "events out of order");
            last_at = event.at_s;
            prop_assert_eq!(state[event.replica], event.from);
            prop_assert!(
                legal_transition(event.from, event.to),
                "illegal transition {:?} -> {:?}",
                event.from,
                event.to
            );
            state[event.replica] = event.to;
        }
        // An elastic fleet can never rent more than the fixed fleet.
        prop_assert!(cost.provisioned_hours <= cost.fixed_fleet_hours + 1e-9);
        prop_assert!(cost.peak_active <= dp);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fixed membership is deterministic: two rings over the same
    /// members agree on every key.
    #[test]
    fn ring_is_deterministic(members in 1usize..12, probe in 0u64..50_000) {
        let set: Vec<usize> = (0..members).collect();
        let a = HashRing::new(&set);
        let b = HashRing::new(&set);
        for key in probe..probe + 64 {
            prop_assert_eq!(a.home(key), b.home(key));
            prop_assert!(set.contains(&a.home(key).unwrap()));
        }
    }

    /// Scale events re-home only a bounded fraction of the key space:
    /// adding one member moves keys only *onto* the newcomer, and the
    /// moved fraction stays near 1/(N+1) — far below the full reshuffle
    /// a mod-N hash would suffer. Removal is the mirror image.
    #[test]
    fn ring_remap_is_bounded(members in 2usize..10, salt in 0u64..1_000) {
        let before: Vec<usize> = (0..members).collect();
        let after: Vec<usize> = (0..=members).collect();
        let small = HashRing::new(&before);
        let big = HashRing::new(&after);
        let keys = 4_000u64;
        let mut moved = 0usize;
        for key in (0..keys).map(|k| k.wrapping_mul(0x9E37_79B9).wrapping_add(salt)) {
            let from = small.home(key).unwrap();
            let to = big.home(key).unwrap();
            if from != to {
                // Accretion: a key only ever moves to the new member.
                prop_assert_eq!(to, members);
                moved += 1;
            }
        }
        let fraction = moved as f64 / keys as f64;
        let expected = 1.0 / (members + 1) as f64;
        prop_assert!(
            fraction < (3.0 * expected).min(0.5),
            "adding 1 of {} members moved {:.1}% of keys (expected ~{:.1}%)",
            members + 1,
            fraction * 100.0,
            expected * 100.0
        );
    }
}

/// Cold spin-up is visible end to end: a flash crowd hitting a
/// scaled-down fleet pays warm-up lag (scale events show `Warming`
/// phases with positive warming-hours), yet still completes every
/// request.
#[test]
fn flash_crowd_pays_a_visible_warm_up_lag() {
    let n = 64usize;
    let workload = ServingWorkload::new(
        ConversationDataset::multi_turn(DatasetKind::GeneralQa, 256, 2),
        ArrivalProcess::FlashCrowd {
            base_rate_per_sec: 1.0,
            spike_rate_per_sec: 24.0,
            spike_every_s: 10.0,
            spike_duration_s: 4.0,
        },
        n,
    )
    .with_seed(7);
    let slo = SloSpec::interactive(2_000.0, 100.0);
    let report = ClusterEngine::new(
        ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            1,
            4,
        )
        .with_routing(PolicySpec::prefix_affinity())
        .with_tuning(
            SessionTuning::default()
                .with_max_batch(8)
                .with_kv_block_size(16)
                .with_prefix_sharing(true),
        )
        .with_autoscale(
            AutoscaleSpec::new(AutoscalePolicySpec::queue_depth(), slo)
                .with_min_replicas(1)
                .with_initial_replicas(1)
                .with_spin_up(5.0)
                .with_decide_interval(1.0),
        ),
    )
    .expect("valid elastic fleet")
    .run(&workload);
    assert_eq!(report.requests(), n as u64);
    let cost = report.fleet_cost.expect("cost report");
    let activations = cost
        .scale_events
        .iter()
        .filter(|e| e.to == ReplicaState::Warming)
        .count();
    assert!(
        activations > 0,
        "the spike should force at least one cold activation"
    );
    assert!(
        cost.warming_hours > 0.0,
        "cold activations must accrue warming hours"
    );
    // Warm-up is real lag: a replica activated at time t serves
    // nothing before t + spin_up.
    for event in &cost.scale_events {
        if event.to == ReplicaState::Warming {
            let promoted = cost.scale_events.iter().find(|e| {
                e.replica == event.replica
                    && e.from == ReplicaState::Warming
                    && e.at_s >= event.at_s
            });
            if let Some(promoted) = promoted {
                assert!(
                    promoted.at_s - event.at_s >= 5.0 - 1e-9,
                    "replica {} warmed in {}s, below the 5s spin-up",
                    event.replica,
                    promoted.at_s - event.at_s
                );
            }
        }
    }
}
