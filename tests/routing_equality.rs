//! Equality pin for the control-plane policy redesign: the built-in
//! routing policies, driven through the trait-based `RoutePolicy` API,
//! must reproduce the closed-enum router's `ClusterReport`s bit for
//! bit.
//!
//! The golden values below were captured from the cluster engine at
//! commit deb9aba (the last `RoutingPolicy`-enum implementation):
//! fleet request/token totals, makespan and energy as `f64::to_bits`,
//! and an FNV fingerprint over every replica's records, placements, RLP
//! series, makespan, and energy. Any drift in routing order, admission,
//! preemption, pricing, or RNG consumption changes at least one of
//! these numbers (like `tests/paged_equality.rs` does for the paging
//! refactor).

use papi::core::{ClusterEngine, ClusterReport, ClusterSpec, DesignKind, SessionTuning};
use papi::interconnect::MigrationPricing;
use papi::llm::ModelPreset;
use papi::workload::{
    ConversationDataset, DatasetKind, PolicySpec, ReplicaRole, Router, ServingWorkload,
};

/// FNV-1a over every replica's per-request records, placements, RLP
/// series, makespan, and energy (field order fixed; floats hashed by
/// bit pattern).
fn fingerprint(report: &ClusterReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for replica in &report.replicas {
        mix(replica.records.len() as u64);
        for r in &replica.records {
            mix(r.id);
            mix(r.arrival.value().to_bits());
            mix(r.admitted.value().to_bits());
            mix(r.first_token.value().to_bits());
            mix(r.finished.value().to_bits());
            mix(r.prompt_tokens);
            mix(r.output_tokens);
            mix(r.preemptions);
        }
        for p in &replica.placements {
            mix(*p as u64);
        }
        for r in &replica.rlp_series {
            mix(*r);
        }
        mix(replica.makespan.value().to_bits());
        mix(replica.energy.value().to_bits());
    }
    h
}

struct Golden {
    routing: PolicySpec,
    label: &'static str,
    requests: u64,
    tokens: u64,
    makespan_bits: u64,
    energy_bits: u64,
    fingerprint: u64,
}

fn assert_matches(report: &ClusterReport, golden: &Golden) {
    assert_eq!(report.routing, golden.label, "{}", golden.label);
    assert_eq!(report.requests(), golden.requests, "{}", golden.label);
    assert_eq!(report.tokens(), golden.tokens, "{}", golden.label);
    assert_eq!(
        report.makespan().value().to_bits(),
        golden.makespan_bits,
        "{}: fleet makespan drifted from the enum-router engine",
        golden.label
    );
    assert_eq!(
        report.energy().value().to_bits(),
        golden.energy_bits,
        "{}: fleet energy drifted",
        golden.label
    );
    assert_eq!(
        fingerprint(report),
        golden.fingerprint,
        "{}: replica record/placement/RLP fingerprint drifted",
        golden.label
    );
}

fn scalar_fleet(routing: PolicySpec) -> ClusterReport {
    let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 16.0, 60).with_seed(17);
    ClusterEngine::new(
        ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            1,
            3,
        )
        .with_routing(routing)
        .with_tuning(SessionTuning::default().with_max_batch(8)),
    )
    .expect("valid fleet")
    .run(&workload)
}

fn goldens() -> [Golden; 3] {
    [
        Golden {
            routing: PolicySpec::RoundRobin,
            label: "round-robin",
            requests: 60,
            tokens: 4673,
            makespan_bits: 0x400d33b379d6e6c6,
            energy_bits: 0x40d1c8f6384a5d96,
            fingerprint: 0x9d08152194e8d09a,
        },
        Golden {
            routing: PolicySpec::JoinShortestQueue,
            label: "join-shortest-queue",
            requests: 60,
            tokens: 4673,
            makespan_bits: 0x400cc023211cc405,
            energy_bits: 0x40d19d81f0da2acc,
            fingerprint: 0xaa50d4cc4e42604f,
        },
        Golden {
            routing: PolicySpec::KvPressureAware,
            label: "kv-pressure-aware",
            requests: 60,
            tokens: 4673,
            makespan_bits: 0x400d2ecae2247f67,
            energy_bits: 0x40d1d602554cb923,
            fingerprint: 0x41328d2bfccbd824,
        },
    ]
}

#[test]
fn builtin_policies_reproduce_the_enum_router_reports_bit_for_bit() {
    for golden in &goldens() {
        assert_matches(&scalar_fleet(golden.routing), golden);
    }
}

/// The same goldens hold when the built-in policy is driven explicitly
/// through the open trait seam (`run_with_policy` with a `Router` as
/// the `dyn RoutePolicy`) — `run()` is not a privileged path.
#[test]
fn trait_driven_builtins_match_the_declarative_path() {
    let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 16.0, 60).with_seed(17);
    for golden in &goldens() {
        let engine = ClusterEngine::new(
            ClusterSpec::new(
                DesignKind::PimOnlyPapi,
                ModelPreset::Llama65B.config(),
                1,
                3,
            )
            .with_tuning(SessionTuning::default().with_max_batch(8)),
        )
        .expect("valid fleet");
        let mut router = Router::new(golden.routing);
        let report = engine.run_with_policy(&workload, &mut router);
        assert_matches(&report, golden);
        assert_eq!(router.decisions(), 60);
    }
}

/// The ISSUE-5 disaggregation pin: a fleet with every replica
/// *explicitly* `Colocated` and migration explicitly priced as free
/// runs the full role-aware engine — role-stamped snapshots, the
/// migration clock, the event loop — and must still reproduce the PR 4
/// goldens bit for bit. Disaggregation is pay-for-what-you-use: an
/// all-colocated fleet never migrates, so nothing may drift.
#[test]
fn all_colocated_fleet_with_free_migration_reproduces_the_goldens() {
    let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 16.0, 60).with_seed(17);
    for golden in &goldens() {
        let report = ClusterEngine::new(
            ClusterSpec::new(
                DesignKind::PimOnlyPapi,
                ModelPreset::Llama65B.config(),
                1,
                3,
            )
            .with_routing(golden.routing)
            .with_roles(vec![ReplicaRole::Colocated; 3])
            .with_migration_pricing(MigrationPricing::Free)
            .with_tuning(SessionTuning::default().with_max_batch(8)),
        )
        .expect("valid fleet")
        .run(&workload);
        assert_matches(&report, golden);
        assert_eq!(report.roles, vec![ReplicaRole::Colocated; 3]);
        assert_eq!(report.migration.migrations, 0);
        assert_eq!(report.migration.bytes, 0.0);
        assert!(report.migration.latency.is_none());
    }
}

/// The paged prefix-sharing fleet (block 16, sharing, chunked prefill)
/// on the PR-3 multi-turn conversation dataset also reproduces exactly
/// — the tuning collapse into `SessionTuning` changed no replica
/// behavior.
#[test]
fn paged_conversation_fleet_reproduces_bit_for_bit() {
    let workload = ServingWorkload::poisson(
        ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
        6.0,
        64,
    )
    .with_seed(13);
    let report = ClusterEngine::new(
        ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            1,
            4,
        )
        .with_routing(PolicySpec::JoinShortestQueue)
        .with_tuning(
            SessionTuning::default()
                .with_max_batch(16)
                .with_kv_block_size(16)
                .with_prefix_sharing(true)
                .with_prefill_chunk(512),
        ),
    )
    .expect("valid fleet")
    .run(&workload);
    assert_matches(
        &report,
        &Golden {
            routing: PolicySpec::JoinShortestQueue,
            label: "join-shortest-queue",
            requests: 64,
            tokens: 5783,
            makespan_bits: 0x4027428c40f7e427,
            energy_bits: 0x40e6ec3608763e7b,
            fingerprint: 0xdd83989553bd960f,
        },
    );
}
