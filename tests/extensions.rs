//! Integration tests for the features beyond the paper's core
//! evaluation: prefill accounting, dynamic TLP, MoE sparsity analysis,
//! quantized weights, and report serialization.

use papi::core::{DecodingSimulator, DesignKind, SystemConfig};
use papi::llm::moe::MoeModel;
use papi::llm::{ModelConfig, ModelPreset};
use papi::types::DataType;
use papi::workload::{DatasetKind, WorkloadSpec};

/// Charging prefill wrecks PIM-only designs but barely moves designs
/// that own GPUs — the §7.4 rationale, quantified end to end.
#[test]
fn prefill_collapses_pim_only_end_to_end() {
    let model = ModelPreset::Gpt3_66B.config();
    let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 32, 2).with_seed(8);
    let papi = DecodingSimulator::new(SystemConfig::papi(model.clone())).run_end_to_end(&workload);
    let attacc = DecodingSimulator::new(SystemConfig::attacc_only(model)).run_end_to_end(&workload);
    // PAPI prefills on its GPUs: on long-output workloads prefill is a
    // small share (on short-output general-qa it reaches ~25 % — the
    // paper's own explanation of the dataset gap).
    let papi_share = papi.prefill_time.value() / papi.end_to_end_latency().value();
    assert!(papi_share < 0.15, "PAPI prefill share {papi_share:.2}");
    // AttAcc-only prefills on FPUs: an order of magnitude slower.
    assert!(attacc.prefill_time.value() > 8.0 * papi.prefill_time.value());
    // End-to-end, PAPI's lead grows versus the decode-only account.
    let decode_ratio = attacc.total_latency().value() / papi.total_latency().value();
    let e2e_ratio = attacc.end_to_end_latency().value() / papi.end_to_end_latency().value();
    assert!(
        e2e_ratio > decode_ratio,
        "{e2e_ratio:.2} vs {decode_ratio:.2}"
    );
}

/// Dynamic TLP keeps the PAPI scheduler on the PU through the decayed
/// tail and improves throughput for everyone.
#[test]
fn adaptive_tlp_improves_tail_throughput() {
    let model = ModelPreset::Llama65B.config();
    let fixed = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 32, 2).with_seed(6);
    let adaptive = fixed.clone().with_adaptive_tlp(64, 8);
    let sim = DecodingSimulator::new(SystemConfig::papi(model));
    let r_fixed = sim.run(&fixed);
    let r_adaptive = sim.run(&adaptive);
    assert_eq!(r_fixed.tokens, r_adaptive.tokens, "same work either way");
    assert!(
        r_adaptive.tokens_per_second() > r_fixed.tokens_per_second(),
        "adaptive {:.0} tok/s should beat fixed {:.0} tok/s",
        r_adaptive.tokens_per_second(),
        r_fixed.tokens_per_second()
    );
}

/// Weight-only quantization (dtype plumbing end to end): INT8 halves
/// weight traffic, so the memory-bound decode gets materially faster
/// and the same pools hold a bigger model share.
#[test]
fn int8_weights_speed_up_memory_bound_decode() {
    let fp16 = ModelPreset::Llama65B.config();
    let int8 = ModelConfig {
        dtype: DataType::Int8,
        name: "LLaMA-65B-int8".to_owned(),
        ..fp16.clone()
    };
    assert!(int8.weight_bytes().value() < 0.51 * fp16.weight_bytes().value());

    let workload = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 8, 1)
        .with_seed(2)
        .with_max_iterations(32);
    let r16 = DecodingSimulator::new(SystemConfig::a100_attacc(fp16)).run(&workload);
    let r8 = DecodingSimulator::new(SystemConfig::a100_attacc(int8)).run(&workload);
    let speedup = r16.total_latency().value() / r8.total_latency().value();
    assert!(
        speedup > 1.6 && speedup < 2.2,
        "INT8 should roughly halve memory-bound latency: {speedup:.2}×"
    );
}

/// The MoE analysis composes with the PIM executors: effective reuse
/// drives the same GEMV model the dense path uses.
#[test]
fn moe_reuse_extends_pim_win_region() {
    let moe = MoeModel::mixtral_like();
    // At 64 tokens, the dense model's reuse (64) is deep in GPU
    // territory (α ≈ 25), but the MoE-effective reuse is only 16.
    let reuse = moe.effective_ffn_reuse(64);
    assert!(reuse > 12.0 && reuse < 20.0, "effective reuse {reuse}");
    // The fetch volume never exceeds the full expert pool.
    let all = moe.experts as f64 * moe.expert_weights() as f64 * moe.base.dtype.size().value();
    assert!(moe.ffn_fetch_bytes_per_layer(1_000_000).value() <= all * 1.001);
}

/// Reports serialize and deserialize losslessly (operational requirement
/// for sweep tooling).
#[test]
fn reports_round_trip_through_serde() {
    let workload = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 4, 1)
        .with_seed(1)
        .with_max_iterations(8);
    let report = DecodingSimulator::new(SystemConfig::build(
        DesignKind::PimOnlyPapi,
        ModelPreset::Llama65B.config(),
    ))
    .run(&workload);
    let json = serde_json::to_string(&report).expect("serialize");
    let back: papi::core::ExecutionReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.total_latency(), report.total_latency());
    assert_eq!(back.placements, report.placements);

    // Traces round-trip too.
    let trace = workload.trace();
    let json = serde_json::to_string(&trace).expect("serialize trace");
    let back: papi::workload::DecodeTrace = serde_json::from_str(&json).expect("trace back");
    assert_eq!(back, trace);
}

/// The `AcceptanceModel::Geometric` sampler matches its truncated-
/// geometric closed form: with per-token acceptance probability `p` and
/// speculation length `L`, the accepted count is `1 + X` where `X`
/// counts leading successes among `L-1` draft positions, so
/// `E = Σ_{k=0}^{L-1} p^k = (1 - p^L) / (1 - p)`. Seeded, so the
/// statistical tolerance is exact-repeatable.
#[test]
fn geometric_acceptance_mean_matches_closed_form() {
    use papi::workload::SpeculativeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let n = 120_000;
    for (length, p) in [(4u64, 0.5f64), (8, 0.7), (8, 0.9), (2, 0.3), (16, 0.95)] {
        let spec = SpeculativeConfig::geometric(length, p);
        let mut rng = StdRng::seed_from_u64(0x00AC_CE97 ^ length ^ (p * 1e6) as u64);
        let sum: u64 = (0..n).map(|_| spec.sample_accepted(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        // Closed form computed here, independently of the library's own
        // `expected_accepted`.
        let closed_form = (1.0 - p.powi(length as i32)) / (1.0 - p);
        assert!(
            (mean - closed_form).abs() < 0.02,
            "L={length} p={p}: sampled mean {mean:.4} vs closed form {closed_form:.4}"
        );
        // And the library's expectation agrees with the closed form.
        assert!((spec.expected_accepted() - closed_form).abs() < 1e-12);
    }
}
