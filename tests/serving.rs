//! Integration tests for the online serving path: trace and
//! request-lifecycle invariants that must hold across the workload
//! layer, the serving engine, and the metrics aggregation.

use papi::core::{DesignKind, ServingEngine, SloSpec, SystemConfig};
use papi::llm::ModelPreset;
use papi::workload::{DatasetKind, ServingWorkload, WorkloadSpec};

fn engine(kind: DesignKind, max_batch: u64) -> ServingEngine {
    ServingEngine::new(SystemConfig::build(kind, ModelPreset::Llama65B.config()))
        .with_max_batch(max_batch)
}

/// Closed-batch traces: RLP never exceeds the configured capacity and
/// the per-iteration `finished` counts sum to the served requests —
/// for both batching policies, across seeds.
#[test]
fn decode_trace_invariants() {
    for seed in [1u64, 7, 23] {
        for spec in [
            WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 24, 2),
            WorkloadSpec::continuous_batching(DatasetKind::GeneralQa, 24, 2, 40),
        ] {
            let trace = spec.clone().with_seed(seed).trace();
            trace.validate().expect("internally consistent trace");
            assert!(
                trace.iterations.iter().all(|it| it.rlp <= 24),
                "RLP exceeded the batch capacity"
            );
            let finished: u64 = trace.iterations.iter().map(|it| it.finished).sum();
            assert_eq!(finished, trace.requests);
        }
    }
}

/// At equal demand, continuous refill keeps every iteration's RLP at
/// least as high as static batching's (it can only refill, never drop
/// below the static decay).
#[test]
fn continuous_refill_dominates_static_rlp() {
    let static_spec = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 16, 1).with_seed(13);
    let cont_spec =
        WorkloadSpec::continuous_batching(DatasetKind::GeneralQa, 16, 1, 0).with_seed(13);
    let (ts, tc) = (static_spec.trace(), cont_spec.trace());
    // Same demand (queue depth 0 ⇒ same 16 requests), iteration by
    // iteration while both run.
    for (i, (s, c)) in ts.iterations.iter().zip(&tc.iterations).enumerate() {
        assert!(
            c.rlp >= s.rlp,
            "iteration {i}: continuous RLP {} fell below static {}",
            c.rlp,
            s.rlp
        );
    }
    // And with a queue, the refilled decode sustains strictly more
    // token throughput per iteration.
    let deep = WorkloadSpec::continuous_batching(DatasetKind::GeneralQa, 16, 1, 32)
        .with_seed(13)
        .trace();
    let static_tput = ts.total_tokens as f64 / ts.len() as f64;
    let deep_tput = deep.total_tokens as f64 / deep.len() as f64;
    assert!(deep_tput > static_tput);
}

/// The serving engine respects its admission capacity and finishes
/// every request with a complete, ordered lifecycle.
#[test]
fn serving_lifecycle_invariants() {
    let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 6.0, 64).with_seed(31);
    for kind in [
        DesignKind::Papi,
        DesignKind::A100AttAcc,
        DesignKind::PimOnlyPapi,
    ] {
        let report = engine(kind, 16).run(&workload);
        assert_eq!(report.records.len(), 64, "{kind}: all requests finish");
        assert!(report.peak_rlp <= 16, "{kind}: RLP exceeded the batch cap");
        assert!(
            report.rlp_series.iter().all(|&r| r <= 16),
            "{kind}: an iteration ran above capacity"
        );
        for r in &report.records {
            // Per-request latencies are non-negative by construction
            // (the Time type rejects negative magnitudes) and ordered.
            assert!(r.queueing_delay().value() >= 0.0);
            assert!(r.tpot().value() >= 0.0);
            assert!(r.ttft().value() > 0.0);
            assert!(
                r.ttft().value() <= r.e2e().value(),
                "{kind}: TTFT exceeded end-to-end latency"
            );
            assert!(r.output_tokens > 0 && r.prompt_tokens > 0);
        }
        // Tokens conservation: the report total equals the per-request sum.
        let per_request: u64 = report.records.iter().map(|r| r.output_tokens).sum();
        assert_eq!(report.tokens, per_request, "{kind}: token accounting drift");
    }
}

/// Under a realistic open-loop load whose tail decays (Poisson
/// arrivals run dry, the live batch drains), PAPI's online scheduler
/// must migrate FC placement at least once — the Fig. 5(d) behaviour
/// in the serving regime. (The closed-batch variant of this property
/// is covered by a unit test in `papi-core`; this one drives the full
/// arrival → queue → decay lifecycle through the facade.)
#[test]
fn online_scheduler_switches_under_decaying_load() {
    let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 16.0, 128).with_seed(42);
    let report = engine(DesignKind::Papi, 64).run(&workload);
    assert!(report.scheduler.switches >= 1, "no online rescheduling");
    assert!(report.scheduler.pu_decisions > 0 && report.scheduler.fc_pim_decisions > 0);
    // The decay direction: the episode's last iterations run below α,
    // on FC-PIM.
    assert_eq!(
        report.placements.last(),
        Some(&papi::sched::Placement::FcPim)
    );
}

/// Goodput under a fixed SLO degrades (weakly) as offered load grows,
/// and the serving path prices through the same hardware model as the
/// batch path (PAPI ≥ baselines at every load).
#[test]
fn goodput_curve_degrades_gracefully() {
    let slo = SloSpec::interactive(2_000.0, 60.0);
    let mut last_attainment = f64::INFINITY;
    for rate in [0.5, 8.0, 64.0] {
        let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, rate, 48).with_seed(3);
        let report = engine(DesignKind::Papi, 32).run(&workload);
        let attainment = report.slo_attainment(&slo);
        assert!(
            attainment <= last_attainment + 1e-9,
            "attainment rose with load at {rate} req/s"
        );
        last_attainment = attainment;
    }
}
