//! Cross-crate integration tests: the paper's headline claims, exercised
//! through the public facade on moderately sized workloads.

use papi::core::{DecodingSimulator, DesignKind, SystemConfig};
use papi::llm::ModelPreset;
use papi::types::geometric_mean;
use papi::workload::{DatasetKind, WorkloadSpec};

fn run(
    kind: DesignKind,
    model: ModelPreset,
    workload: &WorkloadSpec,
) -> papi::core::ExecutionReport {
    DecodingSimulator::new(SystemConfig::build(kind, model.config())).run(workload)
}

/// Fig. 8's headline: PAPI beats every baseline on the creative-writing
/// grid, with meaningful margins over both GPU-heterogeneous and
/// PIM-only designs.
#[test]
fn papi_wins_the_creative_writing_grid() {
    let mut speedups_vs_gpu = Vec::new();
    let mut speedups_vs_pim_only = Vec::new();
    for batch in [4u64, 16, 64] {
        for spec in [1u64, 2] {
            let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, batch, spec)
                .with_seed(31)
                .with_max_iterations(96);
            let trace = workload.trace();
            let papi = DecodingSimulator::new(SystemConfig::build(
                DesignKind::Papi,
                ModelPreset::Llama65B.config(),
            ))
            .run_trace(&trace);
            let gpu = DecodingSimulator::new(SystemConfig::build(
                DesignKind::A100AttAcc,
                ModelPreset::Llama65B.config(),
            ))
            .run_trace(&trace);
            let attacc = DecodingSimulator::new(SystemConfig::build(
                DesignKind::AttAccOnly,
                ModelPreset::Llama65B.config(),
            ))
            .run_trace(&trace);
            assert!(
                papi.total_latency().value() <= gpu.total_latency().value() * 1.02,
                "PAPI lost to A100+AttAcc at batch {batch} spec {spec}"
            );
            speedups_vs_gpu.push(papi.speedup_over(&gpu));
            speedups_vs_pim_only.push(papi.speedup_over(&attacc));
        }
    }
    let vs_gpu = geometric_mean(&speedups_vs_gpu).unwrap();
    let vs_pim = geometric_mean(&speedups_vs_pim_only).unwrap();
    assert!(
        vs_gpu > 1.3,
        "mean speedup over A100+AttAcc only {vs_gpu:.2}"
    );
    assert!(
        vs_pim > 1.5,
        "mean speedup over AttAcc-only only {vs_pim:.2}"
    );
}

/// §7.2's energy claim, in ratio form that our model reproduces exactly:
/// PAPI is close to AttAcc-only in energy (paper: 1.15×) while being
/// much faster, and clearly beats the GPU-heavy baseline.
#[test]
fn papi_energy_efficiency() {
    // Batch 8 × spec 1 sits below α for the whole decode: PAPI runs FC
    // on FC-PIM, where the energy gap against the GPU baseline is
    // largest. (At high parallelism PAPI deliberately matches the GPU's
    // energy because it *is* using the GPU.)
    let workload = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 8, 1).with_seed(5);
    let papi = run(DesignKind::Papi, ModelPreset::Llama65B, &workload);
    let gpu = run(DesignKind::A100AttAcc, ModelPreset::Llama65B, &workload);
    let attacc = run(DesignKind::AttAccOnly, ModelPreset::Llama65B, &workload);
    let vs_gpu = papi.energy_efficiency_over(&gpu);
    let vs_attacc = papi.energy_efficiency_over(&attacc);
    assert!(vs_gpu > 1.5, "energy efficiency vs A100+AttAcc {vs_gpu:.2}");
    assert!(
        vs_attacc > 0.9 && vs_attacc < 1.6,
        "energy vs AttAcc-only should be near parity (paper: 1.15×), got {vs_attacc:.2}"
    );
}

/// §7.3: as TLP grows at a small batch, PAPI's advantage over the GPU
/// baseline shrinks (more iterations go to the GPU) — Fig. 10(b).
#[test]
fn papi_advantage_shrinks_with_tlp() {
    let model = ModelPreset::Llama65B;
    let speedup_at = |spec: u64| {
        let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 4, spec)
            .with_seed(13)
            .with_max_iterations(64);
        let papi = run(DesignKind::Papi, model, &workload);
        let gpu = run(DesignKind::A100AttAcc, model, &workload);
        papi.speedup_over(&gpu)
    };
    let s1 = speedup_at(1);
    let s8 = speedup_at(8);
    assert!(
        s1 > s8,
        "speedup should shrink with TLP: spec1 {s1:.2} vs spec8 {s8:.2}"
    );
    assert!(s8 >= 0.95, "PAPI should never lose outright: {s8:.2}");
}

/// Fig. 10(a): AttAcc-only beats the GPU baseline at batch 4 and
/// collapses by batch 64 — the dynamic-range motivation for PAPI.
#[test]
fn attacc_only_crossover_with_batch() {
    let model = ModelPreset::Llama65B;
    let ratio_at = |batch: u64| {
        let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, batch, 1)
            .with_seed(21)
            .with_max_iterations(48);
        let attacc = run(DesignKind::AttAccOnly, model, &workload);
        let gpu = run(DesignKind::A100AttAcc, model, &workload);
        attacc.speedup_over(&gpu)
    };
    assert!(ratio_at(4) > 1.0, "AttAcc-only should win at batch 4");
    assert!(
        ratio_at(64) < 0.5,
        "AttAcc-only should collapse at batch 64"
    );
}

/// The two GPU-heterogeneous baselines differ only in the attention PIM
/// device; since attention is a small share of decoding time, they stay
/// within a few percent of each other (paper §7.2, observation 3).
#[test]
fn attacc_and_hbm_pim_baselines_nearly_tie() {
    let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 16, 2)
        .with_seed(2)
        .with_max_iterations(96);
    let a = run(DesignKind::A100AttAcc, ModelPreset::Gpt3_66B, &workload);
    let b = run(DesignKind::A100HbmPim, ModelPreset::Gpt3_66B, &workload);
    let ratio = a.total_latency().value() / b.total_latency().value();
    assert!(
        (ratio - 1.0).abs() < 0.05,
        "baselines should nearly tie, ratio {ratio:.3}"
    );
}

/// All three evaluated models run end-to-end on every design without
/// violating capacity checks.
#[test]
fn all_models_all_designs_smoke() {
    for model in ModelPreset::EVALUATED {
        let workload = WorkloadSpec::static_batching(DatasetKind::GeneralQa, 8, 1)
            .with_seed(1)
            .with_max_iterations(16);
        for kind in [
            DesignKind::Papi,
            DesignKind::A100AttAcc,
            DesignKind::A100HbmPim,
            DesignKind::AttAccOnly,
            DesignKind::PimOnlyPapi,
        ] {
            let report = run(kind, model, &workload);
            assert!(report.total_latency().value() > 0.0, "{kind} {model}");
            assert!(report.total_energy().value() > 0.0, "{kind} {model}");
            assert_eq!(report.iterations as usize, report.placements.len());
        }
    }
}
