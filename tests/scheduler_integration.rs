//! Integration tests for the dynamic scheduler against the whole stack:
//! calibration quality, oracle proximity, and rescheduling behaviour.

use papi::core::engine::{fc_latency_on_pim, fc_latency_on_pu};
use papi::core::{DecodingSimulator, SystemConfig};
use papi::gpu::{GpuEnergyModel, GpuSpec, MultiGpu};
use papi::llm::ModelPreset;
use papi::pim::PimDevice;
use papi::sched::{FcScheduler, OracleScheduler, Placement};
use papi::workload::{DatasetKind, WorkloadSpec};

fn papi_gpus() -> MultiGpu {
    let mut gpus = MultiGpu::dgx6_a100();
    gpus.gpu = GpuSpec::a100_papi_60gb();
    gpus
}

/// The calibrated α reproduces the oracle's decisions across the whole
/// token range: below α the PIM latency really is lower, above it the
/// PU's is.
#[test]
fn alpha_threshold_agrees_with_oracle() {
    let model = ModelPreset::Llama65B.config();
    let calibration = SystemConfig::calibrate(&model);
    let fc_pim = PimDevice::fc_pim();
    let gpus = papi_gpus();
    let energy = GpuEnergyModel::a100();

    let mut oracle = OracleScheduler::new(
        |tokens| fc_latency_on_pim(&model, &fc_pim, 30, tokens),
        |tokens| fc_latency_on_pu(&model, &gpus, &energy, tokens),
    );
    let mut disagreements = 0;
    for tokens in 1..=256u64 {
        let oracle_says = oracle.decide(tokens, 1);
        let alpha_says = if tokens as f64 > calibration.alpha {
            Placement::Pu
        } else {
            Placement::FcPim
        };
        if oracle_says != alpha_says {
            disagreements += 1;
        }
    }
    assert!(
        disagreements <= 2,
        "alpha disagreed with the oracle {disagreements}/256 times"
    );
}

/// Running PAPI with a miscalibrated α costs real performance — the
/// threshold is load-bearing, not decorative.
#[test]
fn miscalibrated_alpha_hurts() {
    let model = ModelPreset::Llama65B.config();
    let good_alpha = SystemConfig::calibrate(&model).alpha;
    let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 64, 1)
        .with_seed(7)
        .with_max_iterations(200);
    let trace = workload.trace();

    let tuned = DecodingSimulator::new(SystemConfig::papi_with_alpha(model.clone(), good_alpha))
        .run_trace(&trace);
    // α = 1: everything (except RLP=1) goes to the GPU, even when
    // memory-bound.
    let all_gpu =
        DecodingSimulator::new(SystemConfig::papi_with_alpha(model.clone(), 1.0)).run_trace(&trace);
    // Huge α: everything stays on FC-PIM, even when compute-bound.
    let all_pim =
        DecodingSimulator::new(SystemConfig::papi_with_alpha(model, 1e9)).run_trace(&trace);

    assert!(
        tuned.total_latency().value() <= all_gpu.total_latency().value(),
        "tuned alpha must beat always-GPU"
    );
    assert!(
        tuned.total_latency().value() <= all_pim.total_latency().value(),
        "tuned alpha must beat always-PIM"
    );
    let worst = all_gpu
        .total_latency()
        .value()
        .max(all_pim.total_latency().value());
    assert!(
        worst / tuned.total_latency().value() > 1.2,
        "the threshold should matter by >20%"
    );
}

/// On a decaying batch, the scheduler's switch count stays small (one
/// crossing per decay through α, not thrashing).
#[test]
fn scheduler_does_not_thrash() {
    let model = ModelPreset::Gpt3_66B.config();
    let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 64, 1).with_seed(3);
    let report = DecodingSimulator::new(SystemConfig::papi(model)).run(&workload);
    assert!(
        report.scheduler.switches >= 1,
        "should reschedule at least once"
    );
    assert!(
        report.scheduler.switches <= 4,
        "monotone RLP decay should not cause {} switches",
        report.scheduler.switches
    );
    // Once switched to FC-PIM, it stays there: the placement series is
    // monotone (PU-prefix, FC-PIM-suffix).
    let first_pim = report
        .placements
        .iter()
        .position(|p| *p == Placement::FcPim)
        .expect("decay must reach FC-PIM territory");
    assert!(report.placements[first_pim..]
        .iter()
        .all(|p| *p == Placement::FcPim));
}
