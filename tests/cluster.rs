//! Integration tests for the cluster layer: fleet invariants that must
//! hold across the workload router, the steppable serving sessions, and
//! the cluster aggregation — driven through the `papi` facade.

use papi::core::{
    ClusterEngine, ClusterReport, ClusterSpec, DesignKind, ServingEngine, SessionTuning, SloSpec,
    SystemConfig,
};
use papi::llm::ModelPreset;
use papi::workload::{
    DatasetKind, PolicySpec, ReplicaSnapshot, Request, Router, ServingRequest, ServingWorkload,
};

fn cluster(tp: usize, dp: usize, routing: PolicySpec, max_batch: u64) -> ClusterEngine {
    ClusterEngine::new(
        ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            tp,
            dp,
        )
        .with_routing(routing)
        .with_tuning(SessionTuning::default().with_max_batch(max_batch)),
    )
    .expect("valid fleet")
}

/// A 1×TP1 "fleet" is the single-node engine, bit for bit: same
/// records, same clock, same energy, same placement series
/// (equality-pinned like `slo_latency_matches_engine_pricing`).
#[test]
fn degenerate_cluster_reproduces_single_engine_exactly() {
    let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 6.0, 40).with_seed(29);
    for routing in [PolicySpec::RoundRobin, PolicySpec::JoinShortestQueue] {
        let fleet = cluster(1, 1, routing, 16).run(&workload);
        let single =
            ServingEngine::new(SystemConfig::pim_only_papi(ModelPreset::Llama65B.config()))
                .with_max_batch(16)
                .run(&workload);
        let replica = &fleet.replicas[0];
        assert_eq!(replica.records, single.records, "{routing}");
        assert_eq!(replica.makespan, single.makespan, "{routing}");
        assert_eq!(replica.energy, single.energy, "{routing}");
        assert_eq!(replica.placements, single.placements, "{routing}");
        assert_eq!(replica.iterations, single.iterations, "{routing}");
    }
}

/// Fleet-level conservation: the cluster report's request count equals
/// the sum of replica counts and the workload size, for every routing
/// policy; tokens and records stay consistent.
#[test]
fn cluster_report_conserves_requests_and_tokens() {
    let workload = ServingWorkload::poisson(DatasetKind::GeneralQa, 24.0, 72).with_seed(5);
    for routing in [
        PolicySpec::RoundRobin,
        PolicySpec::JoinShortestQueue,
        PolicySpec::KvPressureAware,
    ] {
        let report: ClusterReport = cluster(1, 3, routing, 8).run(&workload);
        let replica_sum: u64 = report.replicas.iter().map(|r| r.records.len() as u64).sum();
        assert_eq!(report.requests(), replica_sum, "{routing}");
        assert_eq!(report.requests(), 72, "{routing}: a request was lost");
        let token_sum: u64 = report.replicas.iter().map(|r| r.tokens).sum();
        assert_eq!(report.tokens(), token_sum, "{routing}");
        assert_eq!(report.records().count() as u64, report.requests());
        // Every record's lifecycle stays ordered after aggregation.
        for r in report.records() {
            assert!(r.arrival.value() <= r.admitted.value());
            assert!(r.ttft().value() <= r.e2e().value());
        }
    }
}

/// The example's headline, pinned: at saturating load, four
/// data-parallel replicas out-serve one TP4 group (more queues, more
/// batch slots, no collectives); at trickle load the TP4 group decodes
/// each token faster (4× pooled devices behind one batch).
#[test]
fn dp_wins_goodput_at_saturation_tp_wins_single_request_latency() {
    let slo = SloSpec::interactive(2_000.0, 60.0);
    let heavy = ServingWorkload::poisson(DatasetKind::GeneralQa, 48.0, 96).with_seed(42);
    let dp4_hot = cluster(1, 4, PolicySpec::JoinShortestQueue, 32).run(&heavy);
    let tp4_hot = cluster(4, 1, PolicySpec::JoinShortestQueue, 32).run(&heavy);
    assert!(
        dp4_hot.goodput(&slo) > tp4_hot.goodput(&slo),
        "at 48 req/s: 4x TP1 goodput {:.2} should beat 1x TP4 {:.2}",
        dp4_hot.goodput(&slo),
        tp4_hot.goodput(&slo)
    );

    let trickle = ServingWorkload::poisson(DatasetKind::GeneralQa, 0.5, 24).with_seed(42);
    let dp4_cold = cluster(1, 4, PolicySpec::JoinShortestQueue, 32).run(&trickle);
    let tp4_cold = cluster(4, 1, PolicySpec::JoinShortestQueue, 32).run(&trickle);
    let tp4_tpot = tp4_cold.tpot_summary().unwrap().p50.value();
    let dp4_tpot = dp4_cold.tpot_summary().unwrap().p50.value();
    assert!(
        tp4_tpot < dp4_tpot,
        "single-request p50 TPOT: TP4 {tp4_tpot} should beat DP4 {dp4_tpot}"
    );
    // TP collective time is really priced: the TP4 fleet's comm share
    // exceeds the single-node fleet's.
    let comm_share = |r: &ClusterReport| {
        let replica = r
            .replicas
            .iter()
            .find(|r| !r.records.is_empty())
            .expect("someone served");
        replica.phases.communication.value() / replica.phases.total().value()
    };
    assert!(comm_share(&tp4_cold) > comm_share(&dp4_cold));
}

/// The JSQ invariant, replayed over many randomized fleet states: the
/// router never admits to a KV-saturated replica while another still
/// has headroom for the incoming prompt.
#[test]
fn jsq_never_picks_a_saturated_replica_while_headroom_exists() {
    let mut router = Router::new(PolicySpec::JoinShortestQueue);
    // Deterministic pseudo-random fleet states (no RNG needed: a small
    // LCG keeps the test self-contained).
    let mut state = 0x2545_f491u64;
    let mut next = |modulus: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % modulus
    };
    for _ in 0..500 {
        let incoming = 64 + next(512);
        let fleet: Vec<ReplicaSnapshot> = (0..4)
            .map(|_| {
                // Mixed granularities: some replicas page at 16-token
                // blocks with a reclaimable prefix cache, others count
                // scalar tokens.
                let block = if next(2) == 0 { 1 } else { 16 };
                let in_use = next(10_000 / block);
                ReplicaSnapshot {
                    queued: next(12) as usize,
                    live: next(8) as usize,
                    kv_blocks_in_use: in_use,
                    kv_evictable_blocks: next(in_use + 1),
                    kv_budget_blocks: 8_000 / block,
                    kv_block_size: block,
                    ..ReplicaSnapshot::default()
                }
            })
            .collect();
        let request = ServingRequest::new(Request::new(0, incoming, 1), 0.0);
        let pick = router.route(&request, &fleet);
        let headroom_exists = fleet.iter().any(|s| !s.kv_saturated_for(incoming));
        if headroom_exists {
            assert!(
                !fleet[pick].kv_saturated_for(incoming),
                "JSQ admitted to a saturated replica while {fleet:?} had headroom"
            );
        }
    }
}
