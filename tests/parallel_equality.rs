//! Equivalence pin for the parallel fleet event loop:
//! [`StepMode::Parallel`] must reproduce the sequential reference
//! loop's `ClusterReport` bit for bit, across fleet shapes the
//! built-in policies can produce — colocated and disaggregated roles,
//! every migration pricing, prefix-affinity routing, paged KV.
//!
//! The parallel loop only ever reorders *wall-clock* execution: the
//! simulated event order (arrivals, migration deliveries, per-replica
//! iteration boundaries) is derived from the same horizon arithmetic
//! the sequential loop uses, so every report field — including RNG
//! consumption order — must come out identical. Any divergence is a
//! correctness bug in the windowing, not noise.

use papi::core::{
    AutoscalePolicySpec, AutoscaleSpec, ClusterEngine, ClusterReport, ClusterSpec, DesignKind,
    KvTierSpec, SessionTuning, SharedTierSpec, SloSpec, StepMode,
};
use papi::interconnect::{MigrationPricing, TierPricing};
use papi::llm::ModelPreset;
use papi::workload::{
    ArrivalProcess, ConversationDataset, DatasetKind, PolicySpec, ReplicaRole, ServingWorkload,
};
use proptest::prelude::*;

/// FNV-1a over every replica's per-request records, placements, RLP
/// series, makespan, and energy (field order fixed; floats hashed by
/// bit pattern) — the same fingerprint `tests/routing_equality.rs`
/// pins goldens with.
fn fingerprint(report: &ClusterReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for replica in &report.replicas {
        mix(replica.records.len() as u64);
        for r in &replica.records {
            mix(r.id);
            mix(r.arrival.value().to_bits());
            mix(r.admitted.value().to_bits());
            mix(r.first_token.value().to_bits());
            mix(r.finished.value().to_bits());
            mix(r.prompt_tokens);
            mix(r.output_tokens);
            mix(r.preemptions);
        }
        for p in &replica.placements {
            mix(*p as u64);
        }
        for r in &replica.rlp_series {
            mix(*r);
        }
        mix(replica.makespan.value().to_bits());
        mix(replica.energy.value().to_bits());
    }
    h
}

/// Runs `spec` under both step modes and asserts the reports match —
/// first by fingerprint (the focused diagnostic), then byte for byte
/// over the serialized report (the exhaustive check).
fn assert_modes_agree(spec: ClusterSpec, workload: &ServingWorkload, label: &str) {
    let run = |mode: StepMode| {
        ClusterEngine::new(spec.clone().with_step_mode(mode))
            .expect("valid fleet")
            .run(workload)
    };
    let sequential = run(StepMode::Sequential);
    let parallel = run(StepMode::Parallel);
    assert_eq!(
        fingerprint(&sequential),
        fingerprint(&parallel),
        "{label}: parallel stepping diverged from the sequential reference"
    );
    assert_eq!(
        serde_json::to_string(&sequential).expect("report serializes"),
        serde_json::to_string(&parallel).expect("report serializes"),
        "{label}: reports fingerprint-equal but serialize differently"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fleets: replica counts 1–16, random prefill/decode/
    /// colocated role mixes, every migration pricing, both plain and
    /// bursty multi-turn traffic.
    #[test]
    fn parallel_matches_sequential(
        seed in 0u64..1_000_000,
        dp in 1usize..17,
        prefill_share in 0usize..3,
        pricing_pick in 0usize..2,
        bursty in proptest::bool::ANY,
    ) {
        // A fleet needs at least one decode-capable replica; cap the
        // prefill pool below the fleet size.
        let prefill = prefill_share.min(dp.saturating_sub(1));
        let roles: Vec<ReplicaRole> = (0..dp)
            .map(|i| {
                if i < prefill {
                    ReplicaRole::Prefill
                } else {
                    ReplicaRole::Decode
                }
            })
            .collect();
        let disaggregated = prefill > 0;
        let pricing = match pricing_pick {
            0 => MigrationPricing::Fabric,
            _ => MigrationPricing::Free,
        };
        let workload = if bursty {
            ServingWorkload::new(
                ConversationDataset::multi_turn(DatasetKind::GeneralQa, 256, 2),
                ArrivalProcess::Bursty { burst_size: 4, interval_sec: 1.0 },
                32,
            )
            .with_seed(seed)
        } else {
            ServingWorkload::poisson(DatasetKind::GeneralQa, 12.0, 32).with_seed(seed)
        };
        let mut spec =
            ClusterSpec::new(DesignKind::PimOnlyPapi, ModelPreset::Llama65B.config(), 1, dp)
                .with_tuning(SessionTuning::default().with_max_batch(8));
        if disaggregated {
            spec = spec.with_roles(roles).with_migration_pricing(pricing);
        }
        assert_modes_agree(
            spec,
            &workload,
            &format!("dp={dp} prefill={prefill} pricing={pricing_pick} bursty={bursty}"),
        );
    }
}

/// The paged, prefix-shared, affinity-routed shape the
/// `cluster_fleet_64` perf scenario uses (shrunk to a 16-replica fleet
/// so the suite stays fast): the configuration where the parallel
/// loop's fast decode path does nearly all the stepping.
#[test]
fn parallel_matches_sequential_prefix_affinity_fleet() {
    let workload = ServingWorkload::new(
        ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
        ArrivalProcess::Bursty {
            burst_size: 8,
            interval_sec: 1.0,
        },
        256,
    )
    .with_seed(42);
    let spec = ClusterSpec::new(
        DesignKind::PimOnlyPapi,
        ModelPreset::Llama65B.config(),
        1,
        16,
    )
    .with_routing(PolicySpec::prefix_affinity())
    .with_tuning(
        SessionTuning::default()
            .with_max_batch(8)
            .with_kv_block_size(16)
            .with_prefix_sharing(true),
    );
    assert_modes_agree(spec, &workload, "prefix-affinity fleet");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shared-tier fleets: the global directory adds cross-replica
    /// fetch traffic and control-plane sync ticks to both loops, and
    /// the parallel loop must still reproduce the sequential reference
    /// bit for bit — including the `GlobalTierReport` — across replica
    /// counts, routing policies, fabric pricings, and sync intervals.
    /// The workload is the thrash-prone long-context scatter shape
    /// (odd conversation count, so turns change replicas), which makes
    /// remote fetches actually occur rather than testing a quiet
    /// directory.
    #[test]
    fn parallel_matches_sequential_shared_tier(
        seed in 0u64..1_000_000,
        dp in 2usize..5,
        policy_pick in 0usize..3,
        free_fabric in proptest::bool::ANY,
        sync_pick in 0usize..3,
    ) {
        let policy = match policy_pick {
            0 => PolicySpec::RoundRobin,
            1 => PolicySpec::shared_tier_affinity(),
            _ => PolicySpec::prefix_affinity(),
        };
        let sync_s = [0.01, 0.05, 0.5][sync_pick];
        let workload = ServingWorkload::poisson(
            ConversationDataset::multi_turn(DatasetKind::LongContext, 4096, 3),
            4.0,
            51,
        )
        .with_seed(seed);
        let spec = ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            papi::llm::ModelPreset::Gpt3_175B.config(),
            1,
            dp,
        )
        .with_routing(policy)
        .with_tuning(
            SessionTuning::default()
                .with_max_batch(16)
                .with_kv_block_size(16)
                .with_prefix_sharing(true)
                .with_kv_tier(KvTierSpec::new(60_000)),
        )
        .with_shared_tier({
            // Default pricing rides the cluster's inter-node fabric;
            // `Free` is the zero-cost ablation.
            let shared = SharedTierSpec::new().with_sync_interval(sync_s);
            if free_fabric {
                shared.with_pricing(TierPricing::Free)
            } else {
                shared
            }
        });
        assert_modes_agree(
            spec,
            &workload,
            &format!("shared-tier dp={dp} policy={policy_pick} free={free_fabric} sync={sync_s}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Autoscaled fleets: lifecycle transitions, decision ticks,
    /// warm-up promotions, and ring-affinity routing all ride the
    /// control-plane barrier machinery, and the parallel loop must
    /// still reproduce the sequential reference bit for bit —
    /// including the `FleetCostReport` (replica-hours, scale-event
    /// log, energy per good token) — across fleet sizes, built-in
    /// scaling policies, initial fleet fractions, decision intervals,
    /// and both elastic arrival shapes.
    #[test]
    fn parallel_matches_sequential_autoscaled(
        seed in 0u64..1_000_000,
        dp in 2usize..6,
        policy_pick in 0usize..3,
        initial in 1usize..4,
        decide_pick in 0usize..3,
        diurnal in proptest::bool::ANY,
    ) {
        let slo = SloSpec::interactive(2_000.0, 100.0);
        let policy = match policy_pick {
            0 => AutoscalePolicySpec::queue_depth(),
            1 => AutoscalePolicySpec::kv_pressure(),
            _ => AutoscalePolicySpec::slo_burn(slo),
        };
        let decide_s = [0.5, 2.0, 5.0][decide_pick];
        let initial = initial.min(dp);
        let arrivals = if diurnal {
            ArrivalProcess::Diurnal {
                base_rate_per_sec: 2.0,
                peak_rate_per_sec: 16.0,
                period_s: 20.0,
                noise: 0.2,
            }
        } else {
            ArrivalProcess::FlashCrowd {
                base_rate_per_sec: 2.0,
                spike_rate_per_sec: 24.0,
                spike_every_s: 8.0,
                spike_duration_s: 2.0,
            }
        };
        let workload = ServingWorkload::new(
            ConversationDataset::multi_turn(DatasetKind::GeneralQa, 256, 2),
            arrivals,
            48,
        )
        .with_seed(seed);
        let spec = ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            1,
            dp,
        )
        .with_routing(PolicySpec::prefix_affinity())
        .with_tuning(
            SessionTuning::default()
                .with_max_batch(8)
                .with_kv_block_size(16)
                .with_prefix_sharing(true),
        )
        .with_autoscale(
            AutoscaleSpec::new(policy, slo)
                .with_min_replicas(1)
                .with_initial_replicas(initial)
                .with_spin_up(3.0)
                .with_decide_interval(decide_s),
        );
        assert_modes_agree(
            spec,
            &workload,
            &format!(
                "autoscaled dp={dp} policy={policy_pick} initial={initial} \
                 decide={decide_s} diurnal={diurnal}"
            ),
        );
    }
}
