//! §6.5 extension: Mixture-of-Experts FFN execution on FC-PIM.
//!
//! MoE routing turns a big dense FFN into a sparse one: only the routed
//! experts' weights stream from DRAM, and per-expert data reuse is
//! `top_k / experts` of the dense level. Lower reuse is the regime where
//! FC-PIM beats the GPU (Fig. 4), so — as the paper argues — MoE widens
//! PIM's window.
//!
//! ```sh
//! cargo run --release --example moe_sparsity
//! ```

use papi::gpu::{execute_kernel, GpuEnergyModel, KernelProfile, MultiGpu};
use papi::llm::moe::MoeModel;
use papi::pim::gemv::execute_gemv;
use papi::pim::{GemvSpec, PimDevice};
use papi::types::{Bytes, Flops};

fn main() {
    let moe = MoeModel::mixtral_like();
    let fc_pim = PimDevice::fc_pim();
    let gpus = MultiGpu::dgx6_a100();
    let gpu_energy = GpuEnergyModel::a100();
    let devices = 30;
    let h = moe.base.hidden;

    println!(
        "{}: {} experts, top-{} routing, {:.0} B total / {:.0} B active parameters\n",
        moe.base.name,
        moe.experts,
        moe.top_k,
        moe.total_parameters() as f64 / 1e9,
        moe.active_parameters() as f64 / 1e9,
    );
    println!("tokens | distinct experts | eff. reuse | FFN on FC-PIM | FFN on 6xA100 | PIM wins?");
    println!("-------|------------------|------------|---------------|---------------|----------");
    for tokens in [1u64, 4, 16, 64, 256] {
        let distinct = moe.expected_distinct_experts(tokens);
        let reuse = moe.effective_ffn_reuse(tokens).round().max(1.0) as u64;
        // One layer's FFN over the routed experts, priced as a GEMV with
        // the MoE-effective reuse.
        let rows = (distinct * (moe.expert_weights() / h) as f64).round() as u64;
        let spec = GemvSpec::new(rows.max(1), h, reuse, moe.base.dtype);
        let pim = execute_gemv(&fc_pim, devices, &spec);
        let pim_time = pim.time * moe.base.layers as f64;

        // The GPU streams the same distinct-expert weights.
        let flops = 2.0 * moe.expert_weights() as f64 * (tokens * moe.top_k) as f64;
        let bytes = moe.ffn_fetch_bytes_per_layer(tokens);
        let gpu = execute_kernel(
            &gpus,
            &gpu_energy,
            &KernelProfile::new(Flops::new(flops), bytes + Bytes::new(0.0)),
        );
        let gpu_time = gpu.time * moe.base.layers as f64;

        println!(
            "{tokens:6} | {distinct:16.2} | {reuse:10} | {:10.2} ms | {:10.2} ms | {}",
            pim_time.as_millis(),
            gpu_time.as_millis(),
            if pim_time.value() < gpu_time.value() {
                "yes"
            } else {
                "no"
            },
        );
    }
    println!("\nCompare the dense rule of thumb (PIM wins below ~25 tokens):");
    println!(
        "MoE's k/E reuse dilution keeps FC-PIM competitive to ~{}x larger",
        moe.experts / moe.top_k
    );
    println!("batches — the §6.5 claim, quantified.");
}
