//! The disaggregation headline: split prefill and decode across pools
//! built for each phase, and pay for it with priced KV migration.
//!
//! PAPI's intra-node thesis — prefill/FC is compute-bound, decode
//! attention is memory-bound — scales to the fleet: a homogeneous
//! co-located fleet makes every node serve both phases on the same
//! hardware, while a role-split fleet routes arrivals to a GPU-heavy
//! prefill pool and migrates each prompt's KV blocks over the fabric
//! (a priced `Route::KvMigrate` transfer) to a PIM-heavy decode pool.
//! Same node count, same per-node attention-pool DRAM (60 × 16 GB
//! stacks either way): the split pays real migration bytes and
//! latency, and buys back an order of magnitude of tail TTFT on
//! bursty long-context load — the regime where monolithic prefill
//! waves on PIM FPUs crater the co-located fleet.
//!
//! ```sh
//! cargo run --release --example disaggregated_serving
//! ```

use papi::core::experiments::DisaggregationSweep;
use papi::core::{DesignKind, SessionTuning, SloSpec};
use papi::llm::ModelPreset;
use papi::workload::DatasetKind;

fn main() {
    println!(
        "LLaMA-65B, long-context bursty load (synchronized prompt bursts), 64 requests\n\
         per point, 4 nodes per fleet at equal attention-pool DRAM,\n\
         SLO: TTFT <= 10 s, TPOT <= 120 ms\n"
    );
    let rows = DisaggregationSweep {
        model: ModelPreset::Llama65B,
        colocated_design: DesignKind::PimOnlyPapi,
        prefill_design: DesignKind::A100AttAcc,
        decode_design: DesignKind::PimOnlyPapi,
        replicas: 4,
        prefill_replicas: 2,
        dataset: DatasetKind::LongContext,
        bursts: vec![(8, 6.0), (16, 10.0), (32, 16.0)],
        num_requests: 64,
        tuning: SessionTuning::default().with_max_batch(16),
        slo: SloSpec::interactive(10_000.0, 120.0),
        seed: 7,
    }
    .run();

    println!(
        "{:>5} {:>6} {:48} {:>9} {:>9} {:>9} {:>9} {:>6} {:>8} {:>8}",
        "burst",
        "gap",
        "fleet",
        "goodput",
        "ttft-p99",
        "tpot-p99",
        "tok/s",
        "migr",
        "moved",
        "xfer-p99"
    );
    let mut last_burst = 0;
    for row in &rows {
        if row.burst_size != last_burst {
            println!();
            last_burst = row.burst_size;
        }
        println!(
            "{:>5} {:>5.0}s {:48} {:>7.2}r/s {:>8.0}ms {:>8.0}ms {:>9.0} {:>6} {:>6.1}GB {:>6.0}ms",
            row.burst_size,
            row.burst_interval_s,
            row.fleet,
            row.goodput_rps,
            row.ttft_p99_ms,
            row.tpot_p99_ms,
            row.tokens_per_sec,
            row.migrations,
            row.migrated_gb,
            row.migration_p99_ms,
        );
    }

    // The headline comparison at the heaviest burst.
    let burst = 32;
    let colocated = rows
        .iter()
        .find(|r| r.burst_size == burst && r.fleet.contains("colocated"))
        .expect("swept point");
    let split = rows
        .iter()
        .find(|r| r.burst_size == burst && r.fleet.contains("prefill"))
        .expect("swept point");
    println!(
        "\nAt bursts of {burst}: the split fleet's p99 TTFT is {:.0} ms vs {:.0} ms co-located\n\
         ({:.1}x better) while moving {:.1} GB of KV over the fabric ({} migrations,\n\
         p99 transfer {:.0} ms); goodput {:.2} vs {:.2} r/s.",
        split.ttft_p99_ms,
        colocated.ttft_p99_ms,
        colocated.ttft_p99_ms / split.ttft_p99_ms.max(1e-9),
        split.migrated_gb,
        split.migrations,
        split.migration_p99_ms,
        split.goodput_rps,
        colocated.goodput_rps,
    );
    assert!(
        split.ttft_p99_ms < colocated.ttft_p99_ms,
        "the role split must beat co-located p99 TTFT at equal DRAM: {} vs {}",
        split.ttft_p99_ms,
        colocated.ttft_p99_ms
    );
    assert!(
        split.migrations == 64,
        "every request migrates exactly once"
    );
}
