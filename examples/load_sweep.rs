//! The serving headline: SLO goodput across offered load.
//!
//! Sweeps Poisson arrival rates over PAPI and two baselines and prints
//! the goodput curve with TTFT/TPOT tail percentiles — the online
//! regime the ROADMAP targets and the seed's closed-batch pipeline
//! could not express. Watch two things: (1) every design saturates and
//! then sheds goodput as queueing blows the TTFT budget, with PAPI
//! saturating last; (2) the `switch` column shows PAPI's online
//! scheduler migrating FC between the PU and FC-PIM as the live batch
//! decays at the episode tail.
//!
//! ```sh
//! cargo run --release --example load_sweep
//! ```

use papi::core::experiments::LoadSweep;
use papi::core::{DesignKind, SloSpec};
use papi::llm::ModelPreset;
use papi::workload::DatasetKind;

fn main() {
    let designs = [
        DesignKind::Papi,
        DesignKind::A100AttAcc,
        DesignKind::PimOnlyPapi,
    ];
    println!(
        "LLaMA-65B, general-qa, 128 Poisson requests per point, batch cap 64,\n\
         SLO: TTFT ≤ 2 s, TPOT ≤ 60 ms\n"
    );
    let rows = LoadSweep {
        model: ModelPreset::Llama65B,
        dataset: DatasetKind::GeneralQa,
        rates: vec![0.5, 2.0, 8.0, 16.0, 32.0, 64.0],
        num_requests: 128,
        designs: designs.to_vec(),
        max_batch: 64,
        slo: SloSpec::interactive(2_000.0, 60.0),
        seed: 42,
    }
    .run();
    println!(
        "{:>6} {:14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7}",
        "rate",
        "design",
        "ttft-p50",
        "ttft-p99",
        "tpot-p50",
        "tpot-p99",
        "goodput",
        "attain",
        "switch"
    );
    let mut last_rate = f64::NAN;
    for row in &rows {
        if row.rate_per_sec != last_rate {
            println!();
            last_rate = row.rate_per_sec;
        }
        println!(
            "{:>5.1}/s {:14} {:>7.0}ms {:>7.0}ms {:>7.1}ms {:>7.1}ms {:>6.2}r/s {:>7.0}% {:>7}",
            row.rate_per_sec,
            row.design,
            row.ttft_p50_ms,
            row.ttft_p99_ms,
            row.tpot_p50_ms,
            row.tpot_p99_ms,
            row.goodput_rps,
            row.slo_attainment * 100.0,
            row.scheduler_switches,
        );
    }

    // The goodput knee per design: the highest offered load still
    // meeting the SLO for ≥ 90 % of requests.
    println!("\nSaturation (last rate with ≥ 90 % SLO attainment):");
    for design in designs {
        let knee = rows
            .iter()
            .filter(|r| r.design == design.label() && r.slo_attainment >= 0.9)
            .map(|r| r.rate_per_sec)
            .fold(f64::NAN, f64::max);
        match knee.is_nan() {
            true => println!("  {:14} never meets the SLO at these loads", design.label()),
            false => println!("  {:14} {knee:.1} req/s", design.label()),
        }
    }
}
