//! Spill-to-host offload: what a KV capacity tier buys under thrash.
//!
//! A long-context multi-turn fleet resends ~4k-token conversation
//! contexts faster than the PIM-only attention pool can cache them.
//! Without a tier, LRU eviction discards each cold context, and the
//! next turn re-prefills it from scratch — the pool thrashes and TPOT
//! collapses under the recompute load. With a host-DRAM tier (L3's
//! DIMM-PIM shape), eviction becomes a *spill*: the context's logical
//! record survives below the pool, and when its conversation returns,
//! the engine fetches it back over a DDR5 DIMM channel instead of
//! re-prefilling — paying a transfer that lands, honestly, in that
//! request's TTFT.
//!
//! Three runs on the same workload and hot pool: plain eviction, the
//! tier at DIMM pricing, and the tier with free transfers (the
//! ablation isolating capacity from transfer cost).
//!
//! ```sh
//! cargo run --release --example kv_offload
//! ```

use papi::core::{DesignKind, KvTierSpec, ServingEngine, ServingReport, SloSpec, SystemConfig};
use papi::interconnect::TierPricing;
use papi::llm::ModelPreset;
use papi::workload::{ConversationDataset, DatasetKind, ServingWorkload};

fn engine() -> ServingEngine {
    ServingEngine::new(SystemConfig::build(
        DesignKind::PimOnlyPapi,
        ModelPreset::Gpt3_175B.config(),
    ))
    .with_max_batch(16)
    .with_kv_block_size(16)
    .with_prefix_sharing(true)
}

fn row(label: &str, report: &ServingReport, slo: &SloSpec) {
    let ttft = report.ttft_summary().expect("non-empty episode");
    println!(
        "  {label:<10} goodput {:>6.4} req/s | SLO {:>5.1}% | TTFT p50 {:>5.0} s p99 {:>6.0} s | \
         hit rate {:>4.1}% | fetches {:>3} ({:>6} tok, {:>5.1} s priced) | spills {:>3}",
        report.goodput(slo),
        report.slo_attainment(slo) * 100.0,
        ttft.p50.as_secs(),
        ttft.p99.as_secs(),
        report.kv.hit_rate() * 100.0,
        report.kv.tier_fetches,
        report.kv.tier_fetched_tokens,
        report.kv.tier_fetch_time_s,
        report.kv.tier_spills,
    );
}

fn main() {
    println!("== Long-context thrash: evict vs spill-to-host (same hot pool) ==");
    let workload = ServingWorkload::poisson(
        ConversationDataset::multi_turn(DatasetKind::LongContext, 4096, 3),
        1.0,
        120,
    )
    .with_seed(23);
    // The fleet is saturated — queueing dominates TTFT — so the SLO
    // sits at the saturation scale; what separates the runs is whether
    // re-landing turns recompute their context or fetch it.
    let slo = SloSpec::interactive(600_000.0, 400.0);

    let evict = engine().run(&workload);
    let dimm = engine()
        .with_kv_tier(KvTierSpec::new(60_000))
        .run(&workload);
    let free = engine()
        .with_kv_tier(KvTierSpec::new(60_000).with_pricing(TierPricing::Free))
        .run(&workload);

    row("evict", &evict, &slo);
    row("tier-dimm", &dimm, &slo);
    row("tier-free", &free, &slo);

    println!(
        "\n  -> the tier serves {:.1}x the SLO goodput: {} of {} evictions spilled, \
         {} fetches restored {} tokens instead of re-prefilling them",
        dimm.goodput(&slo) / evict.goodput(&slo).max(1e-12),
        dimm.kv.tier_spills,
        dimm.kv.prefix_evictions,
        dimm.kv.tier_fetches,
        dimm.kv.tier_fetched_tokens,
    );
    println!(
        "  -> makespan {:.0} s -> {:.0} s; prefill work {} -> {} tokens",
        evict.makespan.as_secs(),
        dimm.makespan.as_secs(),
        evict.kv.prefilled_tokens,
        dimm.kv.prefilled_tokens,
    );
    let dimm_p99 = dimm.ttft_summary().expect("non-empty").p99;
    let free_p99 = free.ttft_summary().expect("non-empty").p99;
    println!(
        "  -> the DIMM transfer is visible: TTFT p99 {:.0} s priced vs {:.0} s free \
         ({:.1} s of fetch time on the critical path, {:.1} J of transfer energy)",
        dimm_p99.as_secs(),
        free_p99.as_secs(),
        dimm.kv.tier_fetch_time_s,
        dimm.kv.tier_fetch_energy_j,
    );

    // The claims this example exists to demonstrate.
    assert!(
        dimm.goodput(&slo) > 2.0 * evict.goodput(&slo),
        "tier goodput {:.4} must materially beat eviction {:.4}",
        dimm.goodput(&slo),
        evict.goodput(&slo)
    );
    assert!(dimm.kv.tier_fetches > 0 && dimm.kv.tier_fetch_time_s > 0.0);
    assert!(
        dimm_p99.value() >= free_p99.value(),
        "priced fetches must not beat free ones on TTFT"
    );
    assert!(dimm.kv.hit_rate() > evict.kv.hit_rate());

    println!("\nSpill-to-host offload holds on this machine's build.");
}
