//! The control-plane headline: routing is now a policy, and the right
//! policy recovers fleet-wide cache hits.
//!
//! A 4-replica PIM-only fleet serves multi-turn conversations with
//! prefix sharing on. Each replica's prefix cache is private, so a
//! conversation only hits if its turns keep landing on the same
//! replica. Join-shortest-queue is prefix-oblivious: it scatters turns
//! wherever the queue is short, and the fleet re-prefills contexts some
//! other replica already cached. `PrefixAffinity` — a policy only the
//! trait-based `RoutePolicy` API can express, because it reads the
//! *request's* conversation key from the `RouteContext` — hashes each
//! conversation to a sticky home replica and spills only under KV
//! pressure. Same fleet, same DRAM, same workload: higher hit rate,
//! more goodput.
//!
//! ```sh
//! cargo run --release --example prefix_routing
//! ```

use papi::core::experiments::RoutingSweep;
use papi::core::{DesignKind, SessionTuning, SloSpec};
use papi::llm::ModelPreset;
use papi::workload::{ConversationDataset, DatasetKind, PolicySpec};

fn main() {
    let policies = vec![
        PolicySpec::RoundRobin,
        PolicySpec::JoinShortestQueue,
        PolicySpec::KvPressureAware,
        PolicySpec::prefix_affinity(),
    ];
    println!(
        "LLaMA-65B on 4 PIM-only PAPI replicas, multi-turn chat (15 conversations\n\
         x 4 turns, 512-token system prompt), prefix sharing on (16-token blocks),\n\
         60 requests per point, SLO: TTFT ≤ 4 s, TPOT ≤ 80 ms\n"
    );
    let rows = RoutingSweep {
        model: ModelPreset::Llama65B,
        design: DesignKind::PimOnlyPapi,
        conversations: ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
        rates: vec![2.0, 6.0, 12.0],
        num_requests: 60,
        tp_degree: 1,
        dp_replicas: 4,
        policies,
        tuning: SessionTuning::default()
            .with_max_batch(16)
            .with_kv_block_size(16)
            .with_prefix_sharing(true),
        slo: SloSpec::interactive(4_000.0, 80.0),
        seed: 7,
    }
    .run();

    println!(
        "{:>6} {:20} {:>8} {:>9} {:>9} {:>9} {:>7} {:>6}",
        "rate", "policy", "hit-rate", "goodput", "ttft-p50", "ttft-p99", "attain", "used"
    );
    let mut last_rate = f64::NAN;
    for row in &rows {
        if row.rate_per_sec != last_rate {
            println!();
            last_rate = row.rate_per_sec;
        }
        println!(
            "{:>5.1}/s {:20} {:>7.1}% {:>7.2}r/s {:>7.0}ms {:>7.0}ms {:>6.0}% {:>3}/4",
            row.rate_per_sec,
            row.routing,
            row.cache_hit_rate * 100.0,
            row.goodput_rps,
            row.ttft_p50_ms,
            row.ttft_p99_ms,
            row.slo_attainment * 100.0,
            row.replicas_used,
        );
    }

    let at = |routing: &str, rate: f64| {
        rows.iter()
            .find(|r| r.routing == routing && r.rate_per_sec == rate)
            .expect("swept point")
    };
    let rate = 6.0;
    let jsq = at("join-shortest-queue", rate);
    let affinity = at("prefix-affinity", rate);
    println!(
        "\nAt {rate}/s: prefix-affinity hits {:.1}% of prefill demand vs JSQ's {:.1}%\n\
         ({:.2}x the fleet hit rate), and serves {:.2}x the goodput from the same DRAM.",
        affinity.cache_hit_rate * 100.0,
        jsq.cache_hit_rate * 100.0,
        affinity.cache_hit_rate / jsq.cache_hit_rate.max(1e-12),
        affinity.goodput_rps / jsq.goodput_rps.max(1e-12),
    );
    assert!(
        affinity.cache_hit_rate > jsq.cache_hit_rate,
        "prefix-affinity hit rate {:.3} must beat JSQ {:.3}",
        affinity.cache_hit_rate,
        jsq.cache_hit_rate
    );
    assert!(
        affinity.goodput_rps > jsq.goodput_rps,
        "prefix-affinity goodput {:.3} must beat JSQ {:.3}",
        affinity.goodput_rps,
        jsq.goodput_rps
    );
    println!(
        "(Past saturation the trade reverses — stickiness stacks hot queues while\n\
         JSQ balances them; pick the policy for the regime you run in.)\n\
         The ROADMAP's prefix-affinity open item is closed on this build."
    );
}
