//! Quickstart: build the PAPI system and a state-of-the-art baseline,
//! decode the same batch on both, and print the comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use papi::core::{DecodingSimulator, SystemConfig};
use papi::llm::ModelPreset;
use papi::workload::{DatasetKind, WorkloadSpec};

fn main() {
    // A LLaMA-65B batch of 16 creative-writing requests, speculation
    // length 2 — a realistic mid-parallelism serving point.
    let model = ModelPreset::Llama65B.config();
    let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 16, 2).with_seed(7);

    let papi = DecodingSimulator::new(SystemConfig::papi(model.clone()));
    let baseline = DecodingSimulator::new(SystemConfig::a100_attacc(model));

    let r_papi = papi.run(&workload);
    let r_base = baseline.run(&workload);

    println!("model            : {}", r_papi.model);
    println!("requests / tokens: {} / {}", r_papi.requests, r_papi.tokens);
    for r in [&r_base, &r_papi] {
        println!(
            "{:12} | latency {:7.2} s | {:7.1} tokens/s | {:6.1} mJ/token",
            r.design,
            r.total_latency().as_secs(),
            r.tokens_per_second(),
            r.energy_per_token().as_millijoules(),
        );
    }
    println!(
        "\nPAPI speedup: {:.2}x   energy efficiency: {:.2}x",
        r_papi.speedup_over(&r_base),
        r_papi.energy_efficiency_over(&r_base),
    );
    println!(
        "scheduler: {} decisions, {} PU / {} FC-PIM, {} reschedules",
        r_papi.scheduler.decisions,
        r_papi.scheduler.pu_decisions,
        r_papi.scheduler.fc_pim_decisions,
        r_papi.scheduler.switches,
    );
}
