//! Elastic autoscaling: rent replicas when the diurnal curve needs
//! them, not all day.
//!
//! A fleet sized for the evening peak idles through the trough; one
//! sized for the trough melts at rush hour. This example serves one
//! compressed diurnal cycle (sinusoidal arrivals, trough-to-peak
//! swing of ~12x) two ways over the same 6-replica PIM-only fleet:
//!
//! - **fixed**: all 6 replicas active the whole episode — the
//!   peak-provisioned baseline every capacity planner starts from.
//! - **autoscaled**: a queue-depth policy decides every 5 simulated
//!   seconds; replicas drain when the mean active queue empties and
//!   spin up (10 s cold start, flushed caches) when it builds. The
//!   consistent-hash ring keeps prefix-affinity homes stable across
//!   scale events, so only ~1/N of conversations re-home per event.
//!
//! The autoscaled fleet must hold SLO goodput within a few percent of
//! fixed-peak while renting far fewer replica-hours — the honest cost
//! currency (`FleetCostReport`) — at comparable energy per SLO-good
//! token.
//!
//! The second half replays a flash crowd (quiet baseline, sudden
//! spikes) against a scaled-down fleet: the cost report's scale-event
//! log shows cold `Warming` activations, and the tail TTFT shows the
//! warm-up lag elasticity pays at spike onset — the trade the
//! spin-up knob controls.
//!
//! ```sh
//! cargo run --release --example autoscaling
//! ```

use papi::core::experiments::AutoscaleSweep;
use papi::core::{
    AutoscalePolicySpec, AutoscaleSpec, ClusterEngine, ClusterSpec, DesignKind, SessionTuning,
    SloSpec,
};
use papi::llm::ModelPreset;
use papi::workload::{
    ArrivalProcess, ConversationDataset, DatasetKind, PolicySpec, ServingWorkload,
};

fn main() {
    let slo = SloSpec::interactive(2_000.0, 100.0);
    let tuning = SessionTuning::default()
        .with_max_batch(8)
        .with_kv_block_size(16)
        .with_prefix_sharing(true);

    // ----- Part 1: one compressed diurnal cycle, fixed vs autoscaled.
    println!(
        "Llama-65B on up to 6 PIM-only PAPI replicas, multi-turn chat over one\n\
         compressed diurnal cycle: 0.5 -> 4.0 req/s sinusoid (period 600 s, 10%\n\
         noise), 1400 requests, prefix-affinity routing over the consistent-hash\n\
         ring, SLO: TTFT <= 2 s, TPOT <= 100 ms.\n"
    );
    let diurnal = ServingWorkload::new(
        ConversationDataset::multi_turn(DatasetKind::GeneralQa, 256, 2),
        ArrivalProcess::Diurnal {
            base_rate_per_sec: 0.5,
            peak_rate_per_sec: 4.0,
            period_s: 600.0,
            noise: 0.1,
        },
        1400,
    )
    .with_seed(29);
    // Scale up early (half a request queued per active replica) so the
    // one-at-a-time spin-up pipeline keeps pace with the morning ramp.
    let autoscale = AutoscaleSpec::new(
        AutoscalePolicySpec::QueueDepthTarget {
            scale_up_depth: 0.3,
            scale_down_depth: 0.02,
        },
        slo,
    )
    .with_min_replicas(2)
    .with_initial_replicas(2)
    .with_spin_up(6.0)
    .with_decide_interval(2.5);
    let rows = AutoscaleSweep {
        model: ModelPreset::Llama65B,
        design: DesignKind::PimOnlyPapi,
        workload: diurnal,
        tp_degree: 1,
        dp_replicas: 6,
        routing: PolicySpec::prefix_affinity(),
        tuning: tuning.clone(),
        slo,
        autoscalers: vec![None, Some(autoscale)],
    }
    .run();

    println!(
        "{:28} {:>9} {:>7} {:>9} {:>10} {:>7} {:>8} {:>10}",
        "provisioning",
        "goodput",
        "attain",
        "ttft-p99",
        "repl-hours",
        "peak",
        "events",
        "J/goodtok"
    );
    for row in &rows {
        println!(
            "{:28} {:>7.2}r/s {:>6.0}% {:>7.0}ms {:>10.3} {:>7} {:>8} {:>10.2}",
            row.provisioning,
            row.goodput_rps,
            row.slo_attainment * 100.0,
            row.ttft_p99_ms,
            row.provisioned_hours,
            row.peak_active,
            row.scale_events,
            row.energy_per_good_token_j,
        );
    }
    let fixed = &rows[0];
    let elastic = &rows[1];
    let hours_saved = 1.0 - elastic.provisioned_hours / fixed.provisioned_hours;
    let goodput_gap = 1.0 - elastic.goodput_rps / fixed.goodput_rps;
    println!(
        "\nAutoscaling rented {:.1}% fewer replica-hours ({:.3} vs {:.3}) and held\n\
         goodput within {:.1}% of the fixed-peak fleet ({:.2} vs {:.2} r/s), at\n\
         {:.2} vs {:.2} J per SLO-good token.",
        hours_saved * 100.0,
        elastic.provisioned_hours,
        fixed.provisioned_hours,
        goodput_gap.max(0.0) * 100.0,
        elastic.goodput_rps,
        fixed.goodput_rps,
        elastic.energy_per_good_token_j,
        fixed.energy_per_good_token_j,
    );

    // The acceptance headline: near-peak goodput at a large
    // replica-hour saving, without an energy-per-good-token blowup.
    assert!(
        goodput_gap < 0.05,
        "autoscaled goodput must stay within 5% of fixed-peak: {:.3} vs {:.3} r/s",
        elastic.goodput_rps,
        fixed.goodput_rps
    );
    assert!(
        hours_saved > 0.25,
        "autoscaling must save at least 25% of replica-hours: {:.3} vs {:.3}",
        elastic.provisioned_hours,
        fixed.provisioned_hours
    );
    assert!(
        elastic.energy_per_good_token_j <= fixed.energy_per_good_token_j * 1.10,
        "energy per good token must not blow up: {:.3} vs {:.3} J",
        elastic.energy_per_good_token_j,
        fixed.energy_per_good_token_j
    );
    assert!(
        elastic.scale_events > 0,
        "the saving must come from scaling"
    );

    // ----- Part 2: flash crowd — what the warm-up lag costs.
    println!(
        "\nFlash crowd on the same hardware, 4 replicas max: 0.5 req/s baseline,\n\
         12 req/s spikes for 10 s every 60 s, 400 requests. The autoscaled fleet\n\
         starts at 1 replica (10 s spin-up) and must provision *during* the spike.\n"
    );
    let crowd = ServingWorkload::new(
        ConversationDataset::multi_turn(DatasetKind::GeneralQa, 256, 2),
        ArrivalProcess::FlashCrowd {
            base_rate_per_sec: 0.5,
            spike_rate_per_sec: 12.0,
            spike_every_s: 60.0,
            spike_duration_s: 10.0,
        },
        400,
    )
    .with_seed(31);
    let fleet = |autoscale: Option<AutoscaleSpec>| {
        let mut spec = ClusterSpec::new(
            DesignKind::PimOnlyPapi,
            ModelPreset::Llama65B.config(),
            1,
            4,
        )
        .with_routing(PolicySpec::prefix_affinity())
        .with_tuning(tuning.clone());
        if let Some(autoscale) = autoscale {
            spec = spec.with_autoscale(autoscale);
        }
        ClusterEngine::new(spec).expect("valid fleet").run(&crowd)
    };
    let fixed_crowd = fleet(None);
    let elastic_crowd = fleet(Some(
        AutoscaleSpec::new(AutoscalePolicySpec::queue_depth(), slo)
            .with_min_replicas(1)
            .with_initial_replicas(1)
            .with_spin_up(10.0)
            .with_decide_interval(2.0),
    ));
    let cost = elastic_crowd
        .fleet_cost
        .as_ref()
        .expect("elastic cost report");

    println!("scale-event log (first spikes):");
    for event in cost.scale_events.iter().take(12) {
        println!(
            "  t={:>7.1}s  replica {}  {} -> {}",
            event.at_s, event.replica, event.from, event.to
        );
    }
    if cost.scale_events.len() > 12 {
        println!("  ... {} more events", cost.scale_events.len() - 12);
    }
    let fixed_p99 = fixed_crowd.ttft_summary().expect("served").p99.as_millis();
    let elastic_p99 = elastic_crowd
        .ttft_summary()
        .expect("served")
        .p99
        .as_millis();
    println!(
        "\nfixed-peak:  ttft-p99 {:>7.0} ms, attainment {:>5.1}%, {:.3} replica-hours\n\
         autoscaled:  ttft-p99 {:>7.0} ms, attainment {:>5.1}%, {:.3} replica-hours\n\
         ({:.3} h warming = the spin-up lag, paid at each cold spike onset)",
        fixed_p99,
        fixed_crowd.slo_attainment(&slo) * 100.0,
        4.0 * fixed_crowd.makespan().value() / 3600.0,
        elastic_p99,
        elastic_crowd.slo_attainment(&slo) * 100.0,
        cost.provisioned_hours,
        cost.warming_hours,
    );

    // The trade must be visible in both directions: elasticity saves
    // hours but pays spin-up lag in the tail.
    assert_eq!(elastic_crowd.requests(), 400, "no request may be lost");
    assert!(
        cost.warming_hours > 0.0,
        "the spikes must force cold activations"
    );
    assert!(
        elastic_p99 >= fixed_p99,
        "warm-up lag should show in the autoscaled tail: {elastic_p99:.0} vs {fixed_p99:.0} ms"
    );
    assert!(
        cost.provisioned_hours < 4.0 * elastic_crowd.makespan().value() / 3600.0,
        "the elastic fleet must rent less than fixed-peak"
    );
    println!("\nThe ROADMAP's elastic-autoscaling item is closed on this build.");
}
