//! The paged KV-cache headline, in two acts.
//!
//! **Act 1 — prefix sharing.** A multi-turn chat fleet resends its
//! whole conversation context every turn. With scalar KV accounting
//! each turn re-prefills everything; with the paged pool and prefix
//! sharing, turn *k + 1* forks the cached blocks of turn *k*'s context
//! and prefills only the new user message. Same DRAM, same admission
//! headroom — materially higher goodput.
//!
//! **Act 2 — chunked prefill.** Bursts of long-context prompts hit a
//! PIM-only design whose prefill is compute-bound and slow. Monolithic
//! admission prices each wave as one giant prefill, so every request
//! behind it waits; chunked prefill meters the same work in bounded
//! chunks (shortest-remaining-first among the admitted), letting short
//! prompts start decoding while giants grind — p99 TTFT drops.
//!
//! ```sh
//! cargo run --release --example prefix_caching
//! ```

use papi::core::{DesignKind, ServingEngine, ServingReport, SloSpec, SystemConfig};
use papi::llm::ModelPreset;
use papi::workload::{ArrivalProcess, ConversationDataset, DatasetKind, ServingWorkload};

fn engine(design: DesignKind, headroom: f64) -> ServingEngine {
    ServingEngine::new(SystemConfig::build(design, ModelPreset::Llama65B.config()))
        .with_max_batch(16)
        .with_kv_headroom(headroom)
}

fn row(label: &str, report: &ServingReport, slo: &SloSpec) {
    let ttft = report.ttft_summary().expect("non-empty episode");
    println!(
        "  {label:<14} goodput {:>5.2} req/s | SLO {:>5.1}% | TTFT p50 {:>7.0} ms p99 {:>8.0} ms | \
         hit rate {:>4.1}% | peak blocks {:>6} | preemptions {}",
        report.goodput(slo),
        report.slo_attainment(slo) * 100.0,
        ttft.p50.as_millis(),
        ttft.p99.as_millis(),
        report.kv.hit_rate() * 100.0,
        report.kv.peak_blocks_in_use,
        report.preemptions,
    );
}

fn main() {
    // ----- Act 1: prefix-cached goodput at equal DRAM ---------------
    println!("== Act 1: multi-turn chat, scalar vs paged+prefix (equal KV capacity) ==");
    let chat = ServingWorkload::poisson(
        ConversationDataset::multi_turn(DatasetKind::GeneralQa, 512, 4),
        4.0,
        160,
    )
    .with_seed(7);
    let slo = SloSpec::interactive(4_000.0, 80.0);
    let scalar = engine(DesignKind::PimOnlyPapi, 0.05).run(&chat);
    let paged = engine(DesignKind::PimOnlyPapi, 0.05)
        .with_kv_block_size(16)
        .with_prefix_sharing(true)
        .run(&chat);
    row("scalar", &scalar, &slo);
    row("paged+prefix", &paged, &slo);
    let gain = paged.goodput(&slo) / scalar.goodput(&slo).max(1e-12);
    println!(
        "  -> prefix caching serves {:.2}x the goodput from the same DRAM \
         ({} of {} prompt tokens forked from cache)\n",
        gain,
        paged.kv.cached_prompt_tokens,
        paged.kv.cached_prompt_tokens + paged.kv.prefilled_tokens,
    );
    assert!(
        paged.goodput(&slo) > scalar.goodput(&slo),
        "prefix-cached goodput {:.3} must beat the scalar baseline {:.3} at equal DRAM",
        paged.goodput(&slo),
        scalar.goodput(&slo)
    );
    assert!(paged.kv.hit_rate() > 0.2);

    // ----- Act 2: chunked prefill under bursty long prompts ---------
    println!("== Act 2: bursty long-context load, monolithic vs chunked prefill ==");
    let bursts = ServingWorkload::new(
        DatasetKind::LongContext,
        ArrivalProcess::Bursty {
            burst_size: 12,
            interval_sec: 40.0,
        },
        240,
    )
    .with_seed(17);
    let monolithic = engine(DesignKind::PimOnlyPapi, 0.85).run(&bursts);
    let chunked = engine(DesignKind::PimOnlyPapi, 0.85)
        .with_prefill_chunk(512)
        .run(&bursts);
    row("monolithic", &monolithic, &slo);
    row("chunked-512", &chunked, &slo);
    let mono_p99 = monolithic.ttft_summary().unwrap().p99;
    let chunk_p99 = chunked.ttft_summary().unwrap().p99;
    println!(
        "  -> chunked prefill cuts p99 TTFT {:.1}x ({:.1} s -> {:.1} s) over {} prefill waves\n",
        mono_p99.value() / chunk_p99.value(),
        mono_p99.as_secs(),
        chunk_p99.as_secs(),
        chunked.kv.prefill_chunks,
    );
    assert!(
        chunk_p99.value() < mono_p99.value(),
        "chunked prefill p99 TTFT {chunk_p99} must beat monolithic {mono_p99}"
    );
    // Work conservation: chunking reprices the same prefill, it does
    // not skip any.
    assert_eq!(chunked.tokens, monolithic.tokens);
    assert_eq!(
        chunked.kv.prefilled_tokens, monolithic.kv.prefilled_tokens,
        "chunking must conserve prefill work"
    );

    println!("Both headline claims hold on this machine's build.");
}
