//! Extension beyond the paper's evaluation: mixed continuous batching
//! (§2.2.1) versus the static batching the paper measures. Continuous
//! refill keeps RLP — and therefore FC data reuse — high, which shrinks
//! PAPI's edge over a static GPU mapping exactly as §7.3 predicts for
//! high-parallelism regimes.
//!
//! ```sh
//! cargo run --release --example continuous_batching
//! ```

use papi::core::{DecodingSimulator, SystemConfig};
use papi::llm::ModelPreset;
use papi::workload::{DatasetKind, WorkloadSpec};

fn main() {
    let model = ModelPreset::Llama65B.config();
    let batch = 32;
    let queue = 96;

    let static_wl = WorkloadSpec::static_batching(DatasetKind::GeneralQa, batch, 1).with_seed(17);
    let continuous_wl =
        WorkloadSpec::continuous_batching(DatasetKind::GeneralQa, batch, 1, queue).with_seed(17);

    println!(
        "LLaMA-65B, general-qa, batch {batch} (continuous refills from a {queue}-deep queue)\n"
    );
    for (label, workload) in [("static", &static_wl), ("continuous", &continuous_wl)] {
        let trace = workload.trace();
        let papi = DecodingSimulator::new(SystemConfig::papi(model.clone())).run_trace(&trace);
        let base =
            DecodingSimulator::new(SystemConfig::a100_attacc(model.clone())).run_trace(&trace);
        println!(
            "{label:11} | {:4} requests | mean RLP {:5.1} | PAPI {:7.1} tok/s | A100+AttAcc {:7.1} tok/s | PAPI speedup {:.2}x",
            trace.requests,
            trace.mean_rlp(),
            papi.tokens_per_second(),
            base.tokens_per_second(),
            papi.speedup_over(&base),
        );
    }
    println!("\nContinuous batching holds RLP near the maximum, so the scheduler");
    println!("keeps FC on the GPU and PAPI converges towards the baseline —");
    println!("while static batching's RLP decay is where dynamic scheduling pays.");
}
