//! Fleet-wide prefix sharing: a global KV tier over the inter-node
//! fabric.
//!
//! A 2-replica PIM-only fleet serves long-context multi-turn
//! conversations hot enough to thrash every replica's attention pool.
//! With private capacity tiers, a conversation's context survives
//! eviction only on its *home* replica: any turn that lands elsewhere
//! re-prefills tens of thousands of tokens from scratch. The
//! fleet-shared tier
//! (`SharedTierSpec`) registers every replica's spilled records in one
//! fleet-wide directory — coherence is free because records are
//! immutable token counts — and a fork-miss that also misses the local
//! tier re-materializes the prefix from its owning replica at
//! inter-node fabric cost: the wire time lands in that request's TTFT,
//! the wire energy in its replica's report, and both are attributed
//! fleet-wide in `GlobalTierReport`.
//!
//! `SharedTierAffinity` closes the loop in the control plane: it
//! routes like `PrefixAffinity` until the arriving conversation's
//! prefix is directory-resident *and* the home replica is pressured —
//! then stickiness buys nothing the fabric can't, so it relaxes to
//! join-shortest-queue. The `TierPricing::Free` ablation shows how
//! much of the remaining gap is the wire itself.
//!
//! ```sh
//! cargo run --release --example global_prefix
//! ```

use papi::core::experiments::{GlobalPrefixRow, GlobalPrefixSweep};
use papi::core::{DesignKind, KvTierSpec, SessionTuning, SharedTierSpec, SloSpec};
use papi::interconnect::TierPricing;
use papi::llm::ModelPreset;
use papi::workload::{ConversationDataset, DatasetKind, PolicySpec};

fn main() {
    println!(
        "GPT-3 175B on 2 PIM-only PAPI replicas, long-context chat: 10 conversations\n\
         x 12 turns (~8k-token system prompts growing to ~26k contexts), hash homes\n\
         split 7/3 across the fleet, prefix sharing on, private spill tier of 60k\n\
         blocks per replica, 120 requests per point, SLO: TTFT <= 8 s, TPOT <= 80 ms\n"
    );
    let rows = GlobalPrefixSweep {
        model: ModelPreset::Gpt3_175B,
        design: DesignKind::PimOnlyPapi,
        conversations: ConversationDataset::multi_turn(DatasetKind::LongContext, 8192, 12),
        rates: vec![0.1, 0.15, 0.2],
        num_requests: 120,
        tp_degree: 1,
        dp_replicas: 2,
        policies: vec![
            PolicySpec::JoinShortestQueue,
            PolicySpec::prefix_affinity(),
            PolicySpec::adaptive_affinity(),
            PolicySpec::shared_tier_affinity(),
        ],
        shared_tiers: vec![
            None,
            Some(SharedTierSpec::new()),
            Some(SharedTierSpec::new().with_pricing(TierPricing::Free)),
        ],
        tuning: SessionTuning::default()
            .with_max_batch(16)
            .with_kv_block_size(16)
            .with_prefix_sharing(true)
            .with_kv_tier(KvTierSpec::new(60_000)),
        slo: SloSpec::interactive(8_000.0, 80.0),
        seed: 23,
    }
    .run();

    println!(
        "{:22} {:>14} {:>8} {:>9} {:>9} {:>7} {:>7} {:>9} {:>9}",
        "policy",
        "shared-tier",
        "hit-rate",
        "goodput",
        "ttft-p99",
        "attain",
        "fetches",
        "wire-GB",
        "wire-s"
    );
    let mut last_tier = String::new();
    for row in &rows {
        if row.shared_tier != last_tier {
            println!();
            last_tier = row.shared_tier.clone();
        }
        println!(
            "{:22} {:>14} {:>7.1}% {:>7.2}r/s {:>7.0}ms {:>6.0}% {:>7} {:>9.1} {:>9.2}",
            row.routing,
            row.shared_tier,
            row.cache_hit_rate * 100.0,
            row.goodput_rps,
            row.ttft_p99_ms,
            row.slo_attainment * 100.0,
            row.remote_fetches,
            row.remote_fetch_gb,
            row.remote_fetch_time_s,
        );
    }

    // The headline rate: hot enough that the 7-conversation home
    // replica thrashes its pool mid-episode, so spilled prefixes are
    // directory-resident while later turns are still arriving.
    let headline = 0.15;
    let at = |routing: &str, tier: &str| -> &GlobalPrefixRow {
        rows.iter()
            .find(|r| r.rate_per_sec == headline && r.routing == routing && r.shared_tier == tier)
            .expect("swept point")
    };
    let private = at("prefix-affinity", "off");
    let shared = at("shared-tier-affinity", "InfiniBand-NDR");
    let free = at("shared-tier-affinity", "free");

    println!(
        "\nShared tier + shared-tier-affinity vs private-tier prefix-affinity:\n\
         fleet hit rate {:.1}% -> {:.1}%, goodput {:.2} -> {:.2} r/s, paying\n\
         {} remote fetches = {:.1} GB / {:.2} s of wire / {:.1} J (honestly in TTFT).",
        private.cache_hit_rate * 100.0,
        shared.cache_hit_rate * 100.0,
        private.goodput_rps,
        shared.goodput_rps,
        shared.remote_fetches,
        shared.remote_fetch_gb,
        shared.remote_fetch_time_s,
        shared.remote_fetch_energy_j,
    );
    println!(
        "Free-fabric ablation: goodput {:.2} r/s with zero wire cost — the gap to\n\
         {:.2} r/s is what the fabric itself costs.",
        free.goodput_rps, shared.goodput_rps,
    );

    // The acceptance headline: the shared tier must lift both fleet
    // hit rate and SLO goodput over the private-tier baseline.
    assert!(
        shared.cache_hit_rate > private.cache_hit_rate,
        "shared tier must lift fleet hit rate: {:.3} vs {:.3}",
        shared.cache_hit_rate,
        private.cache_hit_rate
    );
    assert!(
        shared.goodput_rps > private.goodput_rps,
        "shared tier must lift goodput: {:.3} vs {:.3}",
        shared.goodput_rps,
        private.goodput_rps
    );
    assert!(shared.remote_fetches > 0, "the win must use the fabric");
    assert!(shared.remote_fetch_gb > 0.0 && shared.remote_fetch_time_s > 0.0);
    assert!(
        free.goodput_rps >= shared.goodput_rps,
        "a free fabric can't be slower: {:.3} vs {:.3}",
        free.goodput_rps,
        shared.goodput_rps
    );
    println!("\nThe ROADMAP's fleet-wide prefix-sharing item is closed on this build.");
}
