//! Serve an online Poisson workload on all five systems and compare
//! the user-facing latency metrics the closed-batch paper figures
//! cannot express: queueing delay, TTFT, TPOT, tail percentiles, and
//! SLO goodput.
//!
//! ```sh
//! cargo run --release --example serving_comparison
//! ```

use papi::core::{DesignKind, ServingEngine, SloSpec, SystemConfig};
use papi::llm::ModelPreset;
use papi::workload::{DatasetKind, ServingWorkload};

fn main() {
    let model = ModelPreset::Gpt3_66B.config();
    let designs = [
        DesignKind::A100AttAcc,
        DesignKind::A100HbmPim,
        DesignKind::AttAccOnly,
        DesignKind::PimOnlyPapi,
        DesignKind::Papi,
    ];
    let slo = SloSpec::interactive(1_000.0, 50.0);
    for dataset in [DatasetKind::CreativeWriting, DatasetKind::GeneralQa] {
        let workload = ServingWorkload::poisson(dataset, 3.0, 96).with_seed(23);
        println!(
            "\n=== {dataset} — GPT-3 66B, Poisson 3 req/s, 96 requests, \
             SLO: TTFT ≤ 1 s, TPOT ≤ 50 ms ==="
        );
        println!(
            "{:14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
            "design",
            "ttft-p50",
            "ttft-p99",
            "tpot-p50",
            "tpot-p99",
            "queue-p99",
            "goodput",
            "attain",
            "switch"
        );
        for kind in designs {
            let engine =
                ServingEngine::new(SystemConfig::build(kind, model.clone())).with_max_batch(32);
            let report = engine.run(&workload);
            let ttft = report.ttft_summary().expect("episode served requests");
            let tpot = report.tpot_summary().expect("episode served requests");
            let queue = report.queueing_summary().expect("episode served requests");
            println!(
                "{:14} {:>7.0}ms {:>7.0}ms {:>7.1}ms {:>7.1}ms {:>7.0}ms {:>6.2}r/s {:>7.0}% {:>8}",
                report.design,
                ttft.p50.as_millis(),
                ttft.p99.as_millis(),
                tpot.p50.as_millis(),
                tpot.p99.as_millis(),
                queue.p99.as_millis(),
                report.goodput(&slo),
                report.slo_attainment(&slo) * 100.0,
                report.scheduler.switches,
            );
        }
    }
}
