//! Serve both Dolly-like workload categories on all five systems and
//! print the full comparison — the paper's Fig. 8/9 in miniature.
//!
//! ```sh
//! cargo run --release --example serving_comparison
//! ```

use papi::core::{DecodingSimulator, DesignKind, SystemConfig};
use papi::llm::ModelPreset;
use papi::workload::{DatasetKind, WorkloadSpec};

fn main() {
    let model = ModelPreset::Gpt3_66B.config();
    let designs = [
        DesignKind::A100AttAcc,
        DesignKind::A100HbmPim,
        DesignKind::AttAccOnly,
        DesignKind::PimOnlyPapi,
        DesignKind::Papi,
    ];
    for dataset in [DatasetKind::CreativeWriting, DatasetKind::GeneralQa] {
        println!("\n=== {} — GPT-3 66B, batch 16, speculation 2 ===", dataset);
        let workload = WorkloadSpec::static_batching(dataset, 16, 2).with_seed(23);
        let trace = workload.trace();
        println!(
            "{} requests, {} tokens, {} decoding iterations",
            trace.requests,
            trace.total_tokens,
            trace.len()
        );
        let mut baseline_latency = None;
        for kind in designs {
            let report = DecodingSimulator::new(SystemConfig::build(kind, model.clone()))
                .run_trace(&trace);
            let latency = report.total_latency().as_secs();
            let base = *baseline_latency.get_or_insert(latency);
            let (fc, attn, comm, other) = report.phases.fractions();
            println!(
                "{:14} {:7.2} s ({:4.2}x) | energy {:7.0} J | fc {:4.1}% attn {:4.1}% comm {:4.1}% other {:4.1}%",
                report.design,
                latency,
                base / latency,
                report.total_energy().as_joules(),
                fc * 100.0,
                attn * 100.0,
                comm * 100.0,
                other * 100.0,
            );
        }
    }
}
