//! The cluster headline: how should 4 PAPI nodes be organized?
//!
//! One tensor-parallel group of 4 nodes (`1x TP4`) puts every device
//! pool behind a single batch: each decoding iteration is ~4× faster
//! (minus the per-layer activation all-reduce over InfiniBand, priced
//! through the shared `IterationPricer`), so a lone request sees the
//! lowest TPOT. Four independent replicas (`4x TP1`) behind a
//! join-shortest-queue router run four queues and four batch windows:
//! once the offered load saturates a single queue, the DP fleet
//! sustains more SLO goodput. `2x TP2` sits between. Same four nodes,
//! opposite ends of the latency/throughput trade.
//!
//! ```sh
//! cargo run --release --example cluster_serving
//! ```

use papi::core::experiments::ClusterSweep;
use papi::core::{DesignKind, SessionTuning, SloSpec};
use papi::llm::ModelPreset;
use papi::workload::{DatasetKind, PolicySpec};

fn main() {
    let shapes = [(4usize, 1usize), (2, 2), (1, 4)];
    println!(
        "LLaMA-65B on 4 PIM-only PAPI nodes, general-qa, 96 Poisson requests\n\
         per point, batch cap 32 per replica, join-shortest-queue routing,\n\
         SLO: TTFT ≤ 2 s, TPOT ≤ 60 ms\n"
    );
    let rows = ClusterSweep {
        model: ModelPreset::Llama65B,
        design: DesignKind::PimOnlyPapi,
        dataset: DatasetKind::GeneralQa,
        rates: vec![0.5, 4.0, 16.0, 32.0, 64.0],
        num_requests: 96,
        shapes: shapes.to_vec(),
        routing: PolicySpec::JoinShortestQueue,
        tuning: SessionTuning::default().with_max_batch(32),
        slo: SloSpec::interactive(2_000.0, 60.0),
        seed: 42,
    }
    .run();

    println!(
        "{:>6} {:8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>6}",
        "rate",
        "shape",
        "ttft-p50",
        "ttft-p99",
        "tpot-p50",
        "tpot-p99",
        "goodput",
        "attain",
        "used"
    );
    let mut last_rate = f64::NAN;
    for row in &rows {
        if row.rate_per_sec != last_rate {
            println!();
            last_rate = row.rate_per_sec;
        }
        println!(
            "{:>5.1}/s {:8} {:>7.0}ms {:>7.0}ms {:>7.1}ms {:>7.1}ms {:>6.2}r/s {:>7.0}% {:>3}/{}",
            row.rate_per_sec,
            row.shape,
            row.ttft_p50_ms,
            row.ttft_p99_ms,
            row.tpot_p50_ms,
            row.tpot_p99_ms,
            row.goodput_rps,
            row.slo_attainment * 100.0,
            row.replicas_used,
            row.dp_replicas,
        );
    }

    let at = |shape: &str, rate: f64| {
        rows.iter()
            .find(|r| r.shape == shape && r.rate_per_sec == rate)
            .expect("swept point")
    };

    let low = 0.5;
    let high = 64.0;
    let tp4 = at("1x TP4", low);
    let dp4 = at("4x TP1", low);
    println!(
        "\nLatency (single-request regime, {low}/s): TP wins.\n  \
         1x TP4 p50 TPOT {:.1} ms vs 4x TP1 {:.1} ms ({:.2}x faster per token)",
        tp4.tpot_p50_ms,
        dp4.tpot_p50_ms,
        dp4.tpot_p50_ms / tp4.tpot_p50_ms,
    );
    let tp4_hot = at("1x TP4", high);
    let dp4_hot = at("4x TP1", high);
    println!(
        "Throughput (saturating regime, {high}/s): DP wins.\n  \
         4x TP1 goodput {:.2} r/s vs 1x TP4 {:.2} r/s ({:.2}x the goodput)",
        dp4_hot.goodput_rps,
        tp4_hot.goodput_rps,
        dp4_hot.goodput_rps / tp4_hot.goodput_rps.max(1e-9),
    );
}
