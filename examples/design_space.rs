//! PIM design-space walk: the §6.1 methodology end to end — area
//! constraints (Eq. 3), power versus data reuse (Fig. 7(c)), and the
//! throughput each feasible configuration buys.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use papi::pim::power::power_draw;
use papi::pim::{AreaParams, FpuSpec, PimConfig, PimDevice, PimEnergyModel, PowerBudget};
use papi::types::DataType;

fn main() {
    let area = AreaParams::paper();
    let budget = PowerBudget::hbm3_cube();
    println!("config | banks (Eq.3) | capacity | peak TFLOPS | min reuse within 116 W");
    println!("-------|--------------|----------|-------------|------------------------");
    for (fpus, banks) in [(1u32, 2u32), (1, 1), (2, 1), (4, 1), (8, 1)] {
        let config = PimConfig::new(fpus, banks);
        let bank_count = area.bank_count(config);
        if bank_count == 0 || !bank_count.is_multiple_of(config.banks() as usize) {
            println!("{config}  | does not fit the die");
            continue;
        }
        // Build a device with the area-derived bank count.
        let topology = match bank_count {
            128 => papi::dram::Topology::hbm3_16gb(),
            96 => papi::dram::Topology::fc_pim_12gb(),
            other => {
                println!("{config}  | {other} banks (no HBM floorplan preset; skipped)");
                continue;
            }
        };
        let hbm = papi::dram::HbmDevice {
            name: format!("HBM3-{config}"),
            topology,
            timing: papi::dram::TimingParams::hbm3(),
            energy: papi::dram::EnergyParams::hbm3(),
        };
        let device = PimDevice::new(
            config.label(),
            hbm,
            config,
            FpuSpec::attacc(),
            PimEnergyModel::paper(),
        );
        let min_reuse = (0..12)
            .map(|log| 1u64 << log)
            .find(|&reuse| budget.admits(power_draw(&device, reuse, DataType::Fp16)));
        println!(
            "{:6} | {:12} | {:5.0} GB | {:11.2} | {}",
            config.label(),
            bank_count,
            device.capacity().as_gib(),
            device.peak_flops().as_tflops(),
            min_reuse.map_or("never".to_owned(), |r| r.to_string()),
        );
    }
    println!("\nThe paper's picks drop out of the sweep: Attn-PIM = 1P2B (feasible at");
    println!("reuse 1, which attention with speculation length 1 requires) and");
    println!("FC-PIM = 4P1B x 96 banks (3x the FLOPS, feasible once batching and");
    println!("speculation provide reuse >= 4).");
}
