//! The paper's Fig. 5(d) scenario: watch runtime RLP decay as requests
//! finish, and the PAPI scheduler migrate the FC kernels from the GPU's
//! processing units to FC-PIM the moment `RLP × TLP` crosses α.
//!
//! ```sh
//! cargo run --release --example dynamic_parallelism
//! ```

use papi::core::{DecodingSimulator, SystemConfig};
use papi::llm::ModelPreset;
use papi::sched::Placement;
use papi::workload::{DatasetKind, WorkloadSpec};

fn main() {
    let model = ModelPreset::Llama65B.config();
    let calibration = SystemConfig::calibrate(&model);
    println!(
        "calibrated alpha = {:.1} tokens (RLP x TLP)\n",
        calibration.alpha
    );

    let workload = WorkloadSpec::static_batching(DatasetKind::CreativeWriting, 48, 1).with_seed(11);
    let trace = workload.trace();
    let sim = DecodingSimulator::new(SystemConfig::papi_with_alpha(model, calibration.alpha));
    let report = sim.run_trace(&trace);

    println!("iter | RLP | RLPxTLP | FC placement");
    println!("-----|-----|---------|-------------");
    let mut last: Option<Placement> = None;
    for (i, (it, placement)) in trace.iterations.iter().zip(&report.placements).enumerate() {
        let changed = last != Some(*placement);
        let first_or_sampled = i == 0 || i % 50 == 0;
        if changed || first_or_sampled {
            println!(
                "{:4} | {:3} | {:7} | {}{}",
                i,
                it.rlp,
                it.tokens_in_flight(),
                placement,
                if changed && i > 0 {
                    "   <-- RESCHEDULED"
                } else {
                    ""
                },
            );
        }
        last = Some(*placement);
    }
    println!(
        "\n{} iterations, {} reschedules, {} on PU / {} on FC-PIM",
        report.iterations,
        report.scheduler.switches,
        report.scheduler.pu_decisions,
        report.scheduler.fc_pim_decisions,
    );
    println!(
        "fraction of decode below alpha (GPU-starved on a static design): {:.0}%",
        trace.fraction_below_rlp(calibration.alpha as u64) * 100.0
    );
}
